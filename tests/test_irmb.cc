/**
 * @file
 * Unit and property tests for the Invalidation Request Merging Buffer
 * (Section 6.3).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/irmb.hh"
#include "sim/rng.hh"

namespace idyll
{
namespace
{

IrmbConfig
geometry(std::uint32_t bases, std::uint32_t offsets)
{
    return IrmbConfig{bases, offsets};
}

/** VPN with a given (base, offset). */
Vpn
vpnOf(std::uint64_t base, std::uint32_t offset)
{
    return kLayout4K.irmbVpn(base, offset);
}

TEST(Irmb, InsertThenLookup)
{
    Irmb irmb(geometry(32, 16), kLayout4K);
    EXPECT_FALSE(irmb.contains(vpnOf(1, 2)));
    EXPECT_FALSE(irmb.insert(vpnOf(1, 2)).has_value());
    EXPECT_TRUE(irmb.contains(vpnOf(1, 2)));
    EXPECT_FALSE(irmb.contains(vpnOf(1, 3)));
    EXPECT_FALSE(irmb.contains(vpnOf(2, 2)));
    EXPECT_EQ(irmb.pendingVpns(), 1u);
}

TEST(Irmb, SameBaseMergesIntoOneEntry)
{
    Irmb irmb(geometry(32, 16), kLayout4K);
    for (std::uint32_t off = 0; off < 10; ++off)
        irmb.insert(vpnOf(5, off));
    EXPECT_EQ(irmb.liveEntries(), 1u);
    EXPECT_EQ(irmb.pendingVpns(), 10u);
    EXPECT_EQ(irmb.stats().merges.value(), 9u);
}

TEST(Irmb, DuplicateInsertIsIdempotent)
{
    Irmb irmb(geometry(32, 16), kLayout4K);
    irmb.insert(vpnOf(5, 1));
    irmb.insert(vpnOf(5, 1));
    EXPECT_EQ(irmb.pendingVpns(), 1u);
    EXPECT_EQ(irmb.stats().duplicates.value(), 1u);
}

TEST(Irmb, OffsetOverflowFlushesTheEntry)
{
    Irmb irmb(geometry(32, 4), kLayout4K);
    for (std::uint32_t off = 0; off < 4; ++off)
        EXPECT_FALSE(irmb.insert(vpnOf(9, off)).has_value());
    auto batch = irmb.insert(vpnOf(9, 100));
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 4u);
    // The entry survives, now holding only the new offset.
    EXPECT_TRUE(irmb.contains(vpnOf(9, 100)));
    EXPECT_FALSE(irmb.contains(vpnOf(9, 0)));
    EXPECT_EQ(irmb.stats().offsetFlushes.value(), 1u);
}

TEST(Irmb, BaseOverflowEvictsLruEntry)
{
    Irmb irmb(geometry(2, 16), kLayout4K);
    irmb.insert(vpnOf(1, 0));
    irmb.insert(vpnOf(2, 0));
    irmb.insert(vpnOf(1, 1)); // touch base 1; base 2 becomes LRU
    auto batch = irmb.insert(vpnOf(3, 0));
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), 1u);
    EXPECT_EQ(batch->front(), vpnOf(2, 0));
    EXPECT_TRUE(irmb.contains(vpnOf(3, 0)));
    EXPECT_TRUE(irmb.contains(vpnOf(1, 1)));
    EXPECT_EQ(irmb.stats().baseEvictions.value(), 1u);
}

TEST(Irmb, RemoveForNewMappingElidesInvalidation)
{
    Irmb irmb(geometry(32, 16), kLayout4K);
    irmb.insert(vpnOf(4, 7));
    irmb.insert(vpnOf(4, 8));
    EXPECT_TRUE(irmb.removeForNewMapping(vpnOf(4, 7)));
    EXPECT_FALSE(irmb.contains(vpnOf(4, 7)));
    EXPECT_TRUE(irmb.contains(vpnOf(4, 8)));
    EXPECT_FALSE(irmb.removeForNewMapping(vpnOf(4, 7)));
    EXPECT_EQ(irmb.stats().elided.value(), 1u);
    // Removing the last offset frees the merged entry.
    EXPECT_TRUE(irmb.removeForNewMapping(vpnOf(4, 8)));
    EXPECT_EQ(irmb.liveEntries(), 0u);
}

TEST(Irmb, DrainLruReturnsOldestEntry)
{
    Irmb irmb(geometry(8, 16), kLayout4K);
    irmb.insert(vpnOf(1, 0));
    irmb.insert(vpnOf(2, 0));
    auto batch = irmb.drainLru();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->front(), vpnOf(1, 0));
    EXPECT_EQ(irmb.liveEntries(), 1u);
    irmb.drainLru();
    EXPECT_FALSE(irmb.drainLru().has_value()); // empty
}

TEST(Irmb, PaperHardwareBudgetIs720Bytes)
{
    Irmb irmb(geometry(32, 16), kLayout4K);
    // (36 + 16*9) bits * 32 entries / 8 = 720 bytes (Section 6.3).
    EXPECT_EQ(irmb.sizeBytes(), 720u);
}

TEST(Irmb, SizeBytesRoundsUpOddGeometries)
{
    // Regression: truncating division under-reported the hardware
    // budget for non-byte-aligned geometries in the fig15/fig19
    // sweeps. 3 entries x 3 offsets = 3 * (36 + 27) = 189 bits, which
    // occupies 24 bytes, not 23.
    Irmb odd(geometry(3, 3), kLayout4K);
    EXPECT_EQ(odd.sizeBytes(), 24u);

    // 1 x 1: 45 bits -> 6 bytes (floor would say 5).
    Irmb tiny(geometry(1, 1), kLayout4K);
    EXPECT_EQ(tiny.sizeBytes(), 6u);
}

TEST(Irmb, BaseIndexStaysConsistentUnderEvictionChurn)
{
    // Hammer the base->entry index through its full lifecycle: claim,
    // capacity eviction, offset flush, elision to empty, and idle
    // drain, verifying probes against a model map the whole way. A
    // stale index entry would either assert (debug) or misreport
    // contains() here.
    Irmb irmb(geometry(4, 2), kLayout4K);
    Rng rng(99);
    std::set<Vpn> model;
    auto flushed = [&](const std::optional<Irmb::Batch> &batch) {
        if (batch)
            for (Vpn vpn : *batch)
                model.erase(vpn);
    };
    for (int step = 0; step < 20000; ++step) {
        const Vpn vpn = vpnOf(rng.below(64), rng.below(4));
        switch (rng.below(8)) {
          case 6:
            if (irmb.removeForNewMapping(vpn))
                model.erase(vpn);
            break;
          case 7:
            flushed(irmb.drainLru());
            break;
          default:
            flushed(irmb.insert(vpn));
            model.insert(vpn);
            break;
        }
        const Vpn probe = vpnOf(rng.below(64), rng.below(4));
        ASSERT_EQ(irmb.contains(probe), model.count(probe) != 0);
    }
    ASSERT_EQ(irmb.pendingVpns(), model.size());
}

/**
 * Property: under any insert/remove/drain interleaving, the IRMB plus
 * the batches it emitted always account for every inserted VPN
 * exactly once (nothing lost, nothing duplicated).
 */
class IrmbProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IrmbProperty, ConservationUnderRandomTraffic)
{
    Irmb irmb(geometry(8, 4), kLayout4K);
    Rng rng(GetParam());
    std::set<Vpn> pending;     // inserted, not yet flushed or elided
    std::multiset<Vpn> emitted;

    auto absorb = [&](const std::optional<Irmb::Batch> &batch) {
        if (!batch)
            return;
        for (Vpn vpn : *batch) {
            ASSERT_TRUE(pending.count(vpn)) << "flushed unknown vpn";
            pending.erase(vpn);
        }
    };

    for (int step = 0; step < 4000; ++step) {
        const Vpn vpn = vpnOf(rng.below(16), rng.below(8));
        const auto action = rng.below(10);
        if (action < 6) {
            const bool was_pending = pending.count(vpn) != 0;
            absorb(irmb.insert(vpn));
            if (!was_pending || irmb.contains(vpn))
                pending.insert(vpn);
        } else if (action < 8) {
            if (irmb.removeForNewMapping(vpn))
                pending.erase(vpn);
        } else {
            absorb(irmb.drainLru());
        }
        ASSERT_EQ(irmb.pendingVpns(), pending.size());
        for (Vpn v : pending)
            ASSERT_TRUE(irmb.contains(v));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrmbProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace idyll
