/**
 * @file
 * Tests for the compute-unit model: stream draining, instruction
 * accounting, completion, and warp-level latency hiding.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace idyll
{
namespace
{

/** A scripted stream: N accesses to the same page, fixed compute. */
class ScriptedStream : public CuStream
{
  public:
    ScriptedStream(std::uint64_t items, Cycles compute, Vpn vpn)
        : _items(items), _compute(compute), _vpn(vpn)
    {
    }

    std::optional<WorkItem>
    next() override
    {
        if (_items == 0)
            return std::nullopt;
        --_items;
        return WorkItem{_vpn << 12, false, _compute};
    }

  private:
    std::uint64_t _items;
    Cycles _compute;
    Vpn _vpn;
};

SystemConfig
cuCfg(std::uint32_t warps)
{
    SystemConfig cfg;
    cfg.numGpus = 1;
    cfg.cusPerGpu = 1;
    cfg.warpsPerCu = warps;
    return cfg;
}

/** Run one CU over a scripted stream; return the finish tick. */
Tick
runCu(std::uint32_t warps, std::uint64_t items, Cycles compute)
{
    MultiGpuSystem sys(cuCfg(warps));
    std::vector<std::unique_ptr<CuStream>> streams;
    streams.push_back(
        std::make_unique<ScriptedStream>(items, compute, 7));
    bool done = false;
    sys.gpu(0).launch(std::move(streams), [&] { done = true; });
    sys.eventQueue().run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(sys.gpu(0).allCusDone());
    return sys.gpu(0).finishTick();
}

TEST(ComputeUnit, DrainsExactlyTheStream)
{
    MultiGpuSystem sys(cuCfg(2));
    std::vector<std::unique_ptr<CuStream>> streams;
    streams.push_back(std::make_unique<ScriptedStream>(20, 5, 3));
    sys.gpu(0).launch(std::move(streams), EventFn{});
    sys.eventQueue().run();
    EXPECT_EQ(sys.gpu(0).stats().accesses.value(), 20u);
    // instructions = sum(computeCycles + 1) = 20 * 6.
    EXPECT_EQ(sys.gpu(0).stats().instructions.value(), 120u);
}

TEST(ComputeUnit, EmptyStreamCompletesImmediately)
{
    MultiGpuSystem sys(cuCfg(4));
    std::vector<std::unique_ptr<CuStream>> streams;
    streams.push_back(std::make_unique<ScriptedStream>(0, 0, 0));
    bool done = false;
    sys.gpu(0).launch(std::move(streams), [&] { done = true; });
    EXPECT_TRUE(done); // all warp contexts retire synchronously
}

TEST(ComputeUnit, MoreWarpContextsHideMemoryLatency)
{
    const Tick one_warp = runCu(1, 64, 0);
    const Tick four_warps = runCu(4, 64, 0);
    // Four contexts overlap four memory accesses: substantially
    // faster, though not perfectly 4x (shared stream, same page).
    EXPECT_LT(four_warps * 2, one_warp);
}

TEST(ComputeUnit, ComputeSerializesWhenDominant)
{
    // With huge compute per item and one warp, execution time is
    // essentially items * compute.
    const Tick t = runCu(1, 10, 10000);
    EXPECT_GE(t, 10u * 10000u);
    EXPECT_LE(t, 10u * 10000u + 10u * 2500u); // + translation/data
}

TEST(ComputeUnitDeath, LaunchValidatesStreamCount)
{
    MultiGpuSystem sys(cuCfg(2));
    std::vector<std::unique_ptr<CuStream>> streams; // empty: wrong
    EXPECT_DEATH(sys.gpu(0).launch(std::move(streams), EventFn{}),
                 "streams");
}

} // namespace
} // namespace idyll
