/**
 * @file
 * Failure-injection and structural-pressure tests: out-of-memory,
 * MSHR saturation, walk-queue overflow, and pathological geometries.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/system.hh"

namespace idyll
{
namespace
{

TEST(FailurePaths, GpuOutOfMemoryIsFatal)
{
    SystemConfig cfg;
    cfg.numGpus = 2;
    cfg.cusPerGpu = 2;
    cfg.warpsPerCu = 2;
    cfg.gpuMemPages = 4; // absurdly small device memory
    MultiGpuSystem sys(cfg);
    EXPECT_DEATH(
        {
            for (Vpn vpn = 0; vpn < 16; ++vpn)
                sys.gpu(0).access(0, vpn << 12, false, [] {});
            sys.eventQueue().run();
        },
        "out of memory");
}

TEST(FailurePaths, TinyMshrStillCompletesViaBacklog)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.cusPerGpu = 16;
    cfg.warpsPerCu = 8;
    cfg.l2MshrEntries = 2; // severe structural hazard
    SimResults r = runOnce("PR", cfg, 0.05);
    EXPECT_GT(r.execTicks, 0u);
    // The backlog path was actually exercised.
    MultiGpuSystem sys(cfg);
    SimResults r2 = sys.run(Workload::byName("PR", 0.05));
    std::uint64_t retries = 0;
    for (std::uint32_t g = 0; g < sys.numGpus(); ++g)
        retries += sys.gpu(g).stats().mshrRetries.value();
    EXPECT_GT(retries, 0u);
    EXPECT_EQ(r.execTicks, r2.execTicks); // and it stays deterministic
}

TEST(FailurePaths, TinyWalkQueueCountsStalls)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.cusPerGpu = 16;
    cfg.warpsPerCu = 8;
    cfg.gmmu.walkQueueEntries = 2;
    MultiGpuSystem sys(cfg);
    sys.run(Workload::byName("MT", 0.05));
    std::uint64_t stalls = 0;
    for (std::uint32_t g = 0; g < sys.numGpus(); ++g)
        stalls += sys.gpu(g).gmmu().stats().queueFullStalls.value();
    EXPECT_GT(stalls, 0u);
}

TEST(FailurePaths, SingleWalkerSerializesButCompletes)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.cusPerGpu = 8;
    cfg.warpsPerCu = 4;
    cfg.gmmu.walkerThreads = 1;
    SimResults one = runOnce("KM", cfg, 0.05);
    cfg.gmmu.walkerThreads = 8;
    SimResults eight = runOnce("KM", cfg, 0.05);
    EXPECT_GT(one.execTicks, eight.execTicks);
}

TEST(FailurePaths, MinimalIrmbGeometryWorks)
{
    SystemConfig cfg = scaledForSim(SystemConfig::idyllFull());
    cfg.cusPerGpu = 8;
    cfg.warpsPerCu = 4;
    cfg.irmb.bases = 1;
    cfg.irmb.offsetsPerBase = 1; // every insert evicts
    SimResults r = runOnce("KM", cfg, 0.05);
    EXPECT_GT(r.execTicks, 0u);
    // Every buffered invalidation still reaches the page table.
    EXPECT_GT(r.irmbWrittenBack + r.irmbElided, 0u);
}

TEST(FailurePaths, SingleGpuSystemHasNoSharingTraffic)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.numGpus = 1;
    cfg.cusPerGpu = 8;
    cfg.warpsPerCu = 4;
    SimResults r = runOnce("KM", cfg, 0.05);
    EXPECT_EQ(r.remoteAccesses, 0u);
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_EQ(r.invalSent, 0u);
}

TEST(FailurePaths, TwoGpuAsymmetricCounts)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.numGpus = 2;
    cfg.cusPerGpu = 8;
    cfg.warpsPerCu = 4;
    SimResults r = runOnce("SC", cfg, 0.1);
    EXPECT_GT(r.execTicks, 0u);
    ASSERT_EQ(r.sharingBuckets.size(), 2u);
}

} // namespace
} // namespace idyll
