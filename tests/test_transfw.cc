/**
 * @file
 * Unit tests for the Trans-FW page residency table (Section 7.5).
 */

#include <gtest/gtest.h>

#include "core/transfw.hh"

namespace idyll
{
namespace
{

TransFwConfig
prtCfg(std::uint32_t fingerprints = 443)
{
    TransFwConfig cfg;
    cfg.enabled = true;
    cfg.fingerprints = fingerprints;
    return cfg;
}

TEST(TransFw, RecordThenProbe)
{
    TransFwPrt prt(prtCfg(), 0);
    prt.record(2, 0x1234);
    auto candidate = prt.probe(0x1234);
    ASSERT_TRUE(candidate.has_value());
    EXPECT_EQ(*candidate, 2u);
}

TEST(TransFw, NeverRecordsSelf)
{
    TransFwPrt prt(prtCfg(), 3);
    prt.record(3, 0x99);
    EXPECT_FALSE(prt.probe(0x99).has_value());
}

TEST(TransFw, DropRemovesOnlyMatchingHolder)
{
    TransFwPrt prt(prtCfg(), 0);
    prt.record(1, 0x50);
    prt.drop(2, 0x50); // wrong holder: no-op
    EXPECT_TRUE(prt.probe(0x50).has_value());
    prt.drop(1, 0x50);
    EXPECT_FALSE(prt.probe(0x50).has_value());
}

TEST(TransFw, MostRecentHolderWinsAlias)
{
    TransFwPrt prt(prtCfg(), 0);
    prt.record(1, 0x77);
    prt.record(2, 0x77); // same VPN, newer holder
    EXPECT_EQ(*prt.probe(0x77), 2u);
}

TEST(TransFw, CapacityEvictsOldFingerprints)
{
    TransFwPrt prt(prtCfg(8), 0);
    for (Vpn vpn = 0; vpn < 100; ++vpn)
        prt.record(1, vpn * 977 + 13);
    EXPECT_LE(prt.size(), 8u);
    EXPECT_GT(prt.stats().evictions.value(), 0u);
}

TEST(TransFw, ConfirmStats)
{
    TransFwPrt prt(prtCfg(), 0);
    prt.confirm(true);
    prt.confirm(false);
    prt.confirm(false);
    EXPECT_EQ(prt.stats().remoteConfirms.value(), 1u);
    EXPECT_EQ(prt.stats().remoteRejects.value(), 2u);
}

TEST(TransFw, HardwareBudgetMatchesComparisonPoint)
{
    TransFwPrt prt(prtCfg(443), 0);
    // 443 fingerprints x 13 bits / 8 = 719 bytes (~720 B budget).
    EXPECT_EQ(prt.sizeBytes(), 719u);
}

} // namespace
} // namespace idyll
