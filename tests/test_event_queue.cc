/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * and clock behaviour.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace idyll
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedSchedulingAdvancesClock)
{
    EventQueue eq;
    Tick inner_fired = 0;
    eq.schedule(10, [&] {
        eq.schedule(5, [&] { inner_fired = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner_fired, 15u);
}

TEST(EventQueue, ZeroDelayRunsThisTick)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(7, [&] {
        eq.schedule(0, [&] { ran = (eq.now() == 7); });
    });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilStopsAtBound)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 42; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 42u);
}

TEST(EventQueue, SchedulingInThePastThrowsStructuredError)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    try {
        eq.scheduleAt(5, [] {});
        FAIL() << "scheduleAt(5) at tick 10 should have thrown";
    } catch (const SchedulingError &err) {
        EXPECT_EQ(err.now(), 10u);
        EXPECT_EQ(err.when(), 5u);
        EXPECT_NE(std::string(err.what()).find("past"),
                  std::string::npos);
    }
    // The queue survives the rejected event and stays usable.
    bool ran = false;
    eq.scheduleAt(12, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), 12u);
}

} // namespace
} // namespace idyll
