/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * and clock behaviour.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"

namespace idyll
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedSchedulingAdvancesClock)
{
    EventQueue eq;
    Tick inner_fired = 0;
    eq.schedule(10, [&] {
        eq.schedule(5, [&] { inner_fired = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner_fired, 15u);
}

TEST(EventQueue, ZeroDelayRunsThisTick)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(7, [&] {
        eq.schedule(0, [&] { ran = (eq.now() == 7); });
    });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilStopsAtBound)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 42; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 42u);
}

TEST(EventQueue, SchedulingInThePastThrowsStructuredError)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    try {
        eq.scheduleAt(5, [] {});
        FAIL() << "scheduleAt(5) at tick 10 should have thrown";
    } catch (const SchedulingError &err) {
        EXPECT_EQ(err.now(), 10u);
        EXPECT_EQ(err.when(), 5u);
        EXPECT_NE(std::string(err.what()).find("past"),
                  std::string::npos);
    }
    // The queue survives the rejected event and stays usable.
    bool ran = false;
    eq.scheduleAt(12, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), 12u);
}

TEST(EventQueue, BoundedRunAdvancesClockToMaxTickOnDrain)
{
    // Regression: run(maxTick) used to leave the clock at the last
    // executed event even when the horizon lay further out, so
    // back-to-back bounded runs saw time stand still.
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_EQ(eq.now(), 50u);

    // An empty bounded run still advances to the horizon.
    EXPECT_EQ(eq.runUntil(80), 80u);
    EXPECT_EQ(eq.now(), 80u);

    // An unbounded drain keeps the last executed event's tick.
    eq.schedule(5, [] {});
    EXPECT_EQ(eq.run(), 85u);
}

TEST(EventQueue, EventsExactlyAtMaxTickExecute)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(50, [&] { ++fired; });
    eq.scheduleAt(51, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.cancelled(), 1u);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, CancelStaleHandlesIsSafeNoOp)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(EventQueue::EventId{}));

    auto id = eq.schedule(1, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // double cancel

    auto id2 = eq.schedule(2, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id2)); // already executed

    // Handle whose node was recycled and reused by a newer event:
    // the sequence check must reject it without touching the newcomer.
    auto stale = eq.schedule(10, [] {});
    eq.run();
    bool newcomer = false;
    eq.schedule(5, [&] { newcomer = true; });
    EXPECT_FALSE(eq.cancel(stale));
    eq.run();
    EXPECT_TRUE(newcomer);
}

TEST(EventQueue, SelfCancelDuringExecutionIsNoOp)
{
    EventQueue eq;
    EventQueue::EventId self;
    int fired = 0;
    self = eq.schedule(3, [&] {
        ++fired;
        EXPECT_FALSE(eq.cancel(self));
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.cancelled(), 0u);
}

TEST(EventQueue, PoolRecyclingStaysWithinOneSlab)
{
    // Steady-state schedule/cancel/execute churn must recycle nodes
    // instead of growing the arena: the high-water mark is set by the
    // peak pending count, not by total event traffic.
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int round = 0; round < 2000; ++round) {
        auto keep = eq.schedule(1, [&] { ++fired; });
        auto drop = eq.schedule(2, [&] { ++fired; });
        (void)keep;
        EXPECT_TRUE(eq.cancel(drop));
        eq.run();
    }
    EXPECT_EQ(fired, 2000u);
    EXPECT_EQ(eq.cancelled(), 2000u);
    EXPECT_LE(eq.arenaNodes(), 256u); // one slab covers the churn
}

TEST(EventQueue, SameTickOrderStableAcrossSlabReuse)
{
    // FIFO order among same-tick events must hold even when their
    // nodes are recycled slots from earlier (executed and cancelled)
    // events, i.e. ordering comes from (tick, seq), never from node
    // identity or address.
    EventQueue eq;
    for (int warm = 0; warm < 300; ++warm) {
        auto id = eq.schedule(1, [] {});
        if (warm % 3 == 0)
            eq.cancel(id);
        eq.run();
    }
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(InlineEvent, SchedulingSiteSizedCapturesStayInline)
{
    // The shape of the simulator's largest scheduling site (a `this`
    // pointer plus a WalkRequest/WalkResult payload) must fit the
    // inline buffer; if this fails, enlarge InlineEvent's capacity
    // rather than silently heap-allocating on the hot path.
    struct BigCapture
    {
        void *self;
        std::array<std::uint64_t, 20> payload;
    };
    static_assert(InlineEvent::fitsInline<BigCapture>() ||
                      sizeof(BigCapture) > InlineEvent::kInlineCapacity,
                  "fitsInline must key on size");
    BigCapture big{nullptr, {}};
    int fired = 0;
    InlineEvent ev([big, &fired] {
        (void)big;
        ++fired;
    });
    EXPECT_TRUE(ev.inlineStored());
    ev();
    EXPECT_EQ(fired, 1);
}

TEST(InlineEvent, OversizedCallablesFallBackToHeap)
{
    struct Huge
    {
        std::array<std::uint64_t, 64> payload; // 512 B > capacity
    };
    Huge huge{};
    huge.payload[63] = 7;
    std::uint64_t seen = 0;
    InlineEvent ev([huge, &seen] { seen = huge.payload[63]; });
    EXPECT_FALSE(ev.inlineStored());
    ev();
    EXPECT_EQ(seen, 7u);

    // Move transfers ownership of the heap slot.
    InlineEvent moved(std::move(ev));
    EXPECT_FALSE(moved.inlineStored());
    seen = 0;
    moved();
    EXPECT_EQ(seen, 7u);
}

TEST(InlineEvent, MoveAndResetManageLifetime)
{
    int fired = 0;
    InlineEvent a([&fired] { ++fired; });
    EXPECT_TRUE(static_cast<bool>(a));
    InlineEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    EXPECT_EQ(fired, 1);
    b.reset();
    EXPECT_FALSE(static_cast<bool>(b));
}

} // namespace
} // namespace idyll
