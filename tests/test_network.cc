/**
 * @file
 * Unit tests for the interconnect model: latency, serialization, FIFO
 * ordering per link, and traffic accounting.
 */

#include <gtest/gtest.h>

#include "interconnect/network.hh"

namespace idyll
{
namespace
{

struct NetFixture : ::testing::Test
{
    NetFixture()
    {
        cfg.numGpus = 4;
        cfg.interGpuLink = LinkConfig{300.0, 250};
        cfg.hostLink = LinkConfig{32.0, 600};
        net = std::make_unique<Network>(eq, cfg);
    }

    EventQueue eq;
    SystemConfig cfg;
    std::unique_ptr<Network> net;
};

TEST_F(NetFixture, SmallMessageArrivesAfterSerPlusLatency)
{
    Tick arrived = 0;
    net->send(0, 1, 64, MsgClass::Control, [&] { arrived = eq.now(); });
    eq.run();
    // ceil(64/300) = 1 cycle serialization + 250 latency.
    EXPECT_EQ(arrived, 251u);
}

TEST_F(NetFixture, HostLinkIsSlower)
{
    Tick arrived = 0;
    net->send(0, kHostId, 64, MsgClass::FarFault,
              [&] { arrived = eq.now(); });
    eq.run();
    // ceil(64/32) = 2 + 600.
    EXPECT_EQ(arrived, 602u);
}

TEST_F(NetFixture, BulkTransferSerializes)
{
    Tick arrived = 0;
    net->send(0, 1, 4096, MsgClass::PageData,
              [&] { arrived = eq.now(); });
    eq.run();
    // ceil(4096/300) = 14 + 250.
    EXPECT_EQ(arrived, 264u);
}

TEST_F(NetFixture, BackToBackMessagesQueueFifo)
{
    std::vector<int> order;
    Tick first = 0, second = 0;
    net->send(0, 1, 4096, MsgClass::Control, [&] {
        order.push_back(1);
        first = eq.now();
    });
    net->send(0, 1, 64, MsgClass::Control, [&] {
        order.push_back(2);
        second = eq.now();
    });
    eq.run();
    ASSERT_EQ(order, (std::vector<int>{1, 2}));
    // The second message waited for the first's 14 serialization
    // cycles: 14 + 1 + 250.
    EXPECT_EQ(first, 264u);
    EXPECT_EQ(second, 265u);
    EXPECT_GT(net->queueDelay().max(), 0.0);
}

TEST_F(NetFixture, ControlBypassesBulkOnItsOwnLane)
{
    // GPU<->GPU links carry bulk page payloads on a separate virtual
    // channel, so a control message does NOT queue behind an earlier
    // bulk transfer on the same link.
    std::vector<int> order;
    Tick bulk = 0, control = 0;
    net->send(0, 1, 4096, MsgClass::PageData, [&] {
        order.push_back(1);
        bulk = eq.now();
    });
    net->send(0, 1, 64, MsgClass::Control, [&] {
        order.push_back(2);
        control = eq.now();
    });
    eq.run();
    ASSERT_EQ(order, (std::vector<int>{2, 1}));
    EXPECT_EQ(bulk, 264u);    // ceil(4096/300) + 250
    EXPECT_EQ(control, 251u); // unaffected by the bulk serialization
}

TEST_F(NetFixture, IndependentLinksDoNotInterfere)
{
    Tick a = 0, b = 0;
    net->send(0, 1, 4096, MsgClass::PageData, [&] { a = eq.now(); });
    net->send(2, 3, 64, MsgClass::Control, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, 264u);
    EXPECT_EQ(b, 251u); // unaffected by the 0->1 bulk transfer
}

TEST_F(NetFixture, PerClassAccounting)
{
    net->send(0, 1, 100, MsgClass::Invalidation, [] {});
    net->send(0, 1, 100, MsgClass::Invalidation, [] {});
    net->send(1, 0, 50, MsgClass::InvalAck, [] {});
    eq.run();
    EXPECT_EQ(net->classMessages(MsgClass::Invalidation).value(), 2u);
    EXPECT_EQ(net->classBytes(MsgClass::Invalidation).value(), 200u);
    EXPECT_EQ(net->classMessages(MsgClass::InvalAck).value(), 1u);
    EXPECT_EQ(net->totalBytes(), 250u);
}

TEST_F(NetFixture, BaseLatencyDistinguishesLinkKinds)
{
    EXPECT_EQ(net->baseLatency(0, 1), 250u);
    EXPECT_EQ(net->baseLatency(0, kHostId), 600u);
    EXPECT_EQ(net->baseLatency(kHostId, 3), 600u);
}

TEST_F(NetFixture, LoopbackSendPanics)
{
    EXPECT_DEATH(net->send(1, 1, 64, MsgClass::Control, [] {}),
                 "loopback");
}

} // namespace
} // namespace idyll
