/**
 * @file
 * Tests for the structured event tracer: category parsing, runtime
 * filtering, JSONL well-formedness, digest determinism across the
 * parallel runner, a pinned golden trace for a two-GPU ping-pong
 * migration workload, and the invalidation-subset property that is
 * IDYLL's whole point (lightweight invalidation never sends *more*
 * than the baseline broadcast).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "harness/system.hh"
#include "sim/trace.hh"

namespace idyll
{
namespace
{

// --- pure parsing / naming ---------------------------------------------

TEST(TraceCategories, ParsesAllAndCsv)
{
    EXPECT_EQ(parseTraceCategories("all"), kTraceAll);
    EXPECT_EQ(parseTraceCategories(""), 0u);
    EXPECT_EQ(parseTraceCategories("tlb"),
              traceBit(TraceCategory::Tlb));
    EXPECT_EQ(parseTraceCategories("tlb,inval"),
              traceBit(TraceCategory::Tlb) |
                  traceBit(TraceCategory::Inval));
    EXPECT_EQ(parseTraceCategories("bogus"), std::nullopt);
    EXPECT_EQ(parseTraceCategories("tlb,bogus"), std::nullopt);
}

TEST(TraceCategories, EveryCategoryNameRoundTrips)
{
    for (std::uint32_t i = 0; i < kNumTraceCategories; ++i) {
        const auto cat = static_cast<TraceCategory>(i);
        EXPECT_EQ(parseTraceCategories(traceCategoryName(cat)),
                  traceBit(cat))
            << traceCategoryName(cat);
    }
}

TEST(TraceOps, NamesAreUniqueAndCategorized)
{
    std::set<std::string> names;
    for (std::uint32_t i = 0; i < kNumTraceOps; ++i) {
        const auto op = static_cast<TraceOp>(i);
        const std::string name = traceOpName(op);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate op name " << name;
        EXPECT_LT(static_cast<std::uint32_t>(traceCategoryOf(op)),
                  kNumTraceCategories);
    }
}

// --- digest sink semantics ---------------------------------------------

TEST(TraceDigest, OrderInsensitiveAndCounted)
{
    const TraceEvent e1{10, TraceOp::TlbHit, 0, 0x40000, 3, 1, 0};
    const TraceEvent e2{20, TraceOp::TlbMiss, 1, 0x40001, 2, 0, 0};

    TraceDigestSink ab, ba;
    ab.record(e1);
    ab.record(e2);
    ba.record(e2);
    ba.record(e1);

    EXPECT_EQ(ab.count(TraceCategory::Tlb), 2u);
    EXPECT_EQ(ab.opCount(TraceOp::TlbHit), 1u);
    EXPECT_EQ(ab.totalCount(), 2u);
    EXPECT_EQ(ab.hash(TraceCategory::Tlb),
              ba.hash(TraceCategory::Tlb));
    EXPECT_EQ(ab.totalHash(), ba.totalHash());
    EXPECT_EQ(ab.canonicalText(), ba.canonicalText());
    EXPECT_EQ(ab.canonicalLine(), ba.canonicalLine());

    // A different multiset must not collide on the happy path.
    TraceDigestSink other;
    other.record(e1);
    EXPECT_NE(other.totalHash(), ab.totalHash());
}

#if IDYLL_TRACE_ENABLED

// --- run-based tests (need the instrumentation compiled in) ------------

SystemConfig
smallTraced(SystemConfig base, const std::string &cats)
{
    base.numGpus = 2;
    base.cusPerGpu = 8;
    base.warpsPerCu = 4;
    base.accessCounterThreshold = 4;
    base.prepopulate = Prepopulate::HomeShard;
    base.trace.categories = cats;
    return base;
}

/**
 * A deterministic two-GPU ping-pong: a small, hot, globally shared
 * region that both GPUs hammer with writes, so pages migrate back and
 * forth and every IDYLL mechanism (IRMB merging, in-PTE directory
 * suppression) engages.
 */
AppParams
pingPongParams()
{
    AppParams p;
    p.name = "pingpong2";
    p.pattern = SharePattern::Random;
    p.footprintPages = 64;
    p.itemsPerCu = 400;
    p.writeRatio = 0.5;
    p.remoteFraction = 0.5;
    p.pageRunLength = 2;
    p.shareDegree = 2;
    p.hotFraction = 0.8;
    p.hotPages = 8;
    return p;
}

TEST(TraceFilter, OnlyRequestedCategoriesPassTheMask)
{
    MultiGpuSystem system(
        smallTraced(SystemConfig::idyllFull(), "tlb"));
    ASSERT_NE(system.tracer(), nullptr);
    CollectTraceSink collected;
    system.tracer()->addSink(&collected);

    system.run(Workload(pingPongParams()));

    ASSERT_FALSE(collected.events().empty());
    for (const TraceEvent &event : collected.events()) {
        EXPECT_EQ(traceCategoryOf(event.op), TraceCategory::Tlb)
            << traceOpName(event.op);
    }
}

TEST(TraceJsonl, EveryLineIsOneWellFormedObject)
{
    MultiGpuSystem system(
        smallTraced(SystemConfig::idyllFull(), "mig,inval"));
    ASSERT_NE(system.tracer(), nullptr);
    std::ostringstream jsonl;
    JsonlTraceSink sink(jsonl);
    system.tracer()->addSink(&sink);

    system.run(Workload(pingPongParams()));

    std::istringstream lines(jsonl.str());
    std::string line;
    std::uint64_t count = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"cat\":\""), std::string::npos) << line;
        EXPECT_NE(line.find("\"op\":\""), std::string::npos) << line;
        EXPECT_NE(line.find("\"gpu\":"), std::string::npos) << line;
        // Quotes must balance (no unescaped strings sneaking out).
        EXPECT_EQ(std::count(line.begin(), line.end(), '"') % 2, 0)
            << line;
        ++count;
    }
    ASSERT_NE(system.traceDigest(), nullptr);
    EXPECT_EQ(count, system.traceDigest()->totalCount());
    EXPECT_GT(count, 0u);
}

TEST(TraceDigest, IdenticalForSerialAndParallelSuiteRuns)
{
    const std::vector<std::string> apps{"KM"};
    std::vector<SchemePoint> schemes;
    schemes.push_back({"baseline",
                       smallTraced(SystemConfig::baseline(), "all")});
    schemes.push_back({"idyll",
                       smallTraced(SystemConfig::idyllFull(), "all")});

    const auto serial = runSuite(apps, schemes, 0.1, 1);
    const auto parallel = runSuite(apps, schemes, 0.1, 8);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
        for (std::size_t a = 0; a < serial[s].size(); ++a) {
            EXPECT_FALSE(serial[s][a].traceDigest.empty());
            EXPECT_EQ(serial[s][a].traceDigest,
                      parallel[s][a].traceDigest)
                << schemes[s].label;
        }
    }
}

TEST(GoldenTrace, PingPongMigrationUnderIdyll)
{
    // Four GPUs so the in-PTE directory has something to suppress
    // (with two, every ping-ponged page is shared by "everyone" and
    // a broadcast is already minimal), and a higher migration rate
    // so IRMB bases see multiple offsets in flight at once.
    SystemConfig cfg = smallTraced(SystemConfig::idyllFull(), "all");
    cfg.numGpus = 4;
    cfg.accessCounterThreshold = 2;
    AppParams params = pingPongParams();
    params.itemsPerCu = 600;
    params.hotPages = 16;
    params.hotFraction = 0.6;

    MultiGpuSystem system(cfg);
    SimResults r = system.run(Workload(params));

    const TraceDigestSink *digest = system.traceDigest();
    ASSERT_NE(digest, nullptr);

    // The workload must actually exercise the IDYLL machinery.
    EXPECT_GT(digest->opCount(TraceOp::MigDone), 0u);
    EXPECT_GT(digest->opCount(TraceOp::IrmbMerge), 0u)
        << "IRMB never merged: batching is broken or the workload "
           "stopped ping-ponging";
    EXPECT_GT(digest->opCount(TraceOp::DirTargets), 0u);
    // In-PTE directory suppression: across all rounds, fewer
    // invalidations go out than a 4-GPU broadcast would send.
    EXPECT_LT(digest->opCount(TraceOp::InvalSend),
              4 * digest->opCount(TraceOp::InvalRoundDone));

    // Results carry the one-line digest and the metrics registry.
    EXPECT_EQ(r.traceDigest, digest->canonicalLine());
    EXPECT_NE(r.metricsJson.find("\"children\""), std::string::npos);

    // The pinned golden: event counts AND order-insensitive hashes
    // for every category. Any change to translation, migration, or
    // invalidation behaviour shows up here. If a change is intended,
    // re-pin with:  idyll_tests --gtest_filter='GoldenTrace.*'
    // and copy the "actual" text from the failure message.
    const std::string golden =
        "trace-digest v1\n"
        "tlb count=43606 hash=59c3f1638c6fc2f5\n"
        "irmb count=11922 hash=97cc3836f8436923\n"
        "dir count=11400 hash=741e1cf2b1270142\n"
        "walk count=49323 hash=7ea238d26765fad1\n"
        "mig count=10169 hash=22d52d140e560853\n"
        "inval count=20604 hash=6022b8e9799befd0\n"
        "fault count=21707 hash=28495cdaff36bd96\n"
        "net count=57116 hash=211b275eba0fe08d\n"
        "all count=225847 hash=8f16030c909aeadd\n";
    EXPECT_EQ(digest->canonicalText(), golden)
        << "actual:\n"
        << digest->canonicalText();
}

TEST(GoldenTrace, DigestIdenticalAcrossRepeatedRuns)
{
    // Digest-identity check for the pooled event kernel: two fresh
    // systems in the same process must replay the exact same trace.
    // The second run's queue grows its slab arena from a process heap
    // the first run already churned, so any dependence on node
    // addresses or allocation order (instead of pure (tick, seq)
    // ordering) would show up as a digest difference here.
    SystemConfig cfg = smallTraced(SystemConfig::idyllFull(), "all");
    cfg.numGpus = 4;
    const Workload workload(pingPongParams());

    auto digestOf = [&] {
        MultiGpuSystem system(cfg);
        return system.run(workload).traceDigest;
    };
    const std::string first = digestOf();
    const std::string second = digestOf();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(InvalSubsetProperty, IdyllNeverInvalidatesMoreThanBaseline)
{
    // IDYLL's promise is *fewer, never extra* invalidations: every
    // (target GPU, vpn) the IDYLL scheme invalidates must also be
    // invalidated by the broadcast baseline on the same workload.
    const Workload workload(pingPongParams());

    auto collect = [&](SystemConfig cfg) {
        MultiGpuSystem system(smallTraced(std::move(cfg), "inval"));
        CollectTraceSink sink;
        system.tracer()->addSink(&sink);
        system.run(workload);
        std::set<std::pair<GpuId, Vpn>> pairs;
        for (const TraceEvent &event : sink.events()) {
            if (event.op == TraceOp::InvalSend)
                pairs.emplace(event.gpu, event.vpn);
        }
        return pairs;
    };

    const auto baseline = collect(SystemConfig::baseline());
    const auto idyll = collect(SystemConfig::idyllFull());

    ASSERT_FALSE(baseline.empty());
    ASSERT_FALSE(idyll.empty());
    for (const auto &pair : idyll) {
        EXPECT_TRUE(baseline.count(pair))
            << "idyll invalidated (gpu " << pair.first << ", vpn 0x"
            << std::hex << pair.second
            << ") which the baseline broadcast never sent";
    }
    EXPECT_LE(idyll.size(), baseline.size());
}

#endif // IDYLL_TRACE_ENABLED

} // namespace
} // namespace idyll
