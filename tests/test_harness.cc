/**
 * @file
 * Tests for the harness layer: result tables, runner helpers, and the
 * SimResults aggregation contract.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "harness/runner.hh"
#include "harness/system.hh"
#include "harness/tables.hh"

namespace idyll
{
namespace
{

TEST(Tables, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Tables, ResultTableRendersRowsAndAverage)
{
    ResultTable table("demo", {"a", "b"});
    table.addRow("x", {1.0, 2.0});
    table.addRow("y", {3.0, 4.0});
    table.addAverageRow();
    std::ostringstream os;
    table.print(os, 1);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
    EXPECT_NE(out.find("Ave."), std::string::npos);
    EXPECT_NE(out.find("2.0"), std::string::npos); // avg of column a
    EXPECT_NE(out.find("3.0"), std::string::npos); // avg of column b
}

TEST(TablesDeath, RowArityMustMatchColumns)
{
    ResultTable table("demo", {"a", "b"});
    EXPECT_DEATH(table.addRow("x", {1.0}), "values");
}

TEST(Runner, ScaledForSimAppliesScalingKnobs)
{
    const SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    EXPECT_EQ(cfg.accessCounterThreshold, kScaledThreshold256);
    EXPECT_EQ(cfg.prepopulate, Prepopulate::HomeShard);
    // Everything else untouched.
    EXPECT_EQ(cfg.numGpus, 4u);
    EXPECT_EQ(cfg.l2Tlb.entries, 512u);
}

TEST(Runner, BenchScaleReadsEnvironment)
{
    unsetenv("IDYLL_BENCH_SCALE");
    EXPECT_DOUBLE_EQ(benchScale(), 1.0);
    setenv("IDYLL_BENCH_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(benchScale(), 0.25);
    setenv("IDYLL_BENCH_SCALE", "bogus", 1);
    EXPECT_DOUBLE_EQ(benchScale(), 1.0);
    unsetenv("IDYLL_BENCH_SCALE");
}

TEST(Runner, RunSuiteShapesResults)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.cusPerGpu = 4;
    cfg.warpsPerCu = 2;
    auto results = runSuite({"BS", "SC"}, {{"base", cfg}}, 0.02);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].size(), 2u);
    EXPECT_EQ(results[0][0].app, "BS");
    EXPECT_EQ(results[0][1].app, "SC");
    EXPECT_EQ(results[0][0].scheme, "base");
    EXPECT_GT(results[0][0].execTicks, 0u);
}

TEST(Results, SpeedupAndShares)
{
    SimResults base, other;
    base.execTicks = 200;
    other.execTicks = 100;
    EXPECT_DOUBLE_EQ(other.speedupOver(base), 2.0);
    other.demandWalks = 75;
    other.invalWalks = 25;
    EXPECT_DOUBLE_EQ(other.invalWalkShare(), 0.25);
}

TEST(Results, CollectedFieldsAreInternallyConsistent)
{
    SystemConfig cfg = scaledForSim(SystemConfig::baseline());
    cfg.cusPerGpu = 8;
    cfg.warpsPerCu = 4;
    MultiGpuSystem sys(cfg);
    SimResults r = sys.run(Workload::byName("KM", 0.05));

    EXPECT_EQ(r.app, "KM");
    EXPECT_EQ(r.scheme, "Baseline");
    EXPECT_EQ(r.accesses, r.localAccesses + r.remoteAccesses);
    EXPECT_GT(r.instructions, r.accesses); // computeCycles + 1 each
    EXPECT_GE(r.l2Misses, r.demandTlbMisses);
    EXPECT_GT(r.mpki, 0.0);
    EXPECT_GT(r.networkBytes, 0u);
    // Latency aggregates agree.
    EXPECT_NEAR(r.demandMissLatencyAvg * r.demandTlbMisses,
                r.demandMissLatencyTotal,
                r.demandMissLatencyTotal * 1e-9 + 1.0);
}

} // namespace
} // namespace idyll
