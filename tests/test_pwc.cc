/**
 * @file
 * Unit tests for the page-walk cache.
 */

#include <gtest/gtest.h>

#include "gmmu/page_walk_cache.hh"

namespace idyll
{
namespace
{

TEST(Pwc, MissOnEmpty)
{
    PageWalkCache pwc(128, kLayout4K);
    EXPECT_EQ(pwc.deepestHit(0x12345), 0u);
    EXPECT_EQ(pwc.misses().value(), 1u);
}

TEST(Pwc, FillThenDeepestHitIsLevelOne)
{
    PageWalkCache pwc(128, kLayout4K);
    pwc.fill(0x12345, 1);
    EXPECT_EQ(pwc.deepestHit(0x12345), 1u);
    EXPECT_EQ(pwc.hits().value(), 1u);
}

TEST(Pwc, NeighborsShareLeafPointer)
{
    PageWalkCache pwc(128, kLayout4K);
    pwc.fill(0x1000, 1);
    // VPNs differing only in the low 9 bits share every node pointer.
    EXPECT_EQ(pwc.deepestHit(0x11FF), 1u);
    // A VPN in the next leaf node only shares the upper levels.
    EXPECT_EQ(pwc.deepestHit(0x1200), 2u);
}

TEST(Pwc, PartialFillGivesUpperLevelHit)
{
    PageWalkCache pwc(128, kLayout4K);
    pwc.fill(0x40000000, 3); // only node levels 3..4 cached
    const auto hit = pwc.deepestHit(0x40000000);
    EXPECT_EQ(hit, 3u);
}

TEST(Pwc, InvalidateVpnRemovesItsPath)
{
    PageWalkCache pwc(128, kLayout4K);
    pwc.fill(0x2000, 1);
    pwc.invalidateVpn(0x2000);
    EXPECT_EQ(pwc.deepestHit(0x2000), 0u);
}

TEST(Pwc, CapacityThrashing)
{
    PageWalkCache pwc(16, kLayout4K);
    // Fill far more distinct leaf regions than the PWC can hold.
    for (Vpn v = 0; v < 64; ++v)
        pwc.fill(v << 9, 1);
    EXPECT_LE(pwc.occupancy(), 16u);
    std::uint32_t hits = 0;
    for (Vpn v = 0; v < 64; ++v)
        hits += (pwc.deepestHit(v << 9) == 1);
    EXPECT_LT(hits, 64u); // some were evicted
}

} // namespace
} // namespace idyll
