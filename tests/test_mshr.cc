/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace idyll
{
namespace
{

using File = MshrFile<std::uint64_t, int>;

TEST(Mshr, PrimaryThenSecondaryMerge)
{
    File m(4);
    EXPECT_TRUE(m.allocate(10, 1));  // primary
    EXPECT_FALSE(m.allocate(10, 2)); // merged
    EXPECT_FALSE(m.allocate(10, 3));
    EXPECT_EQ(m.waiters(10), 3u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(Mshr, ReleaseReturnsWaitersInOrder)
{
    File m(4);
    m.allocate(10, 1);
    m.allocate(10, 2);
    m.allocate(10, 3);
    auto waiters = m.release(10);
    ASSERT_EQ(waiters.size(), 3u);
    EXPECT_EQ(waiters[0], 1);
    EXPECT_EQ(waiters[1], 2);
    EXPECT_EQ(waiters[2], 3);
    EXPECT_FALSE(m.contains(10));
}

TEST(Mshr, FullOnlyCountsPrimaries)
{
    File m(2);
    m.allocate(1, 0);
    for (int i = 0; i < 10; ++i)
        m.allocate(1, i); // merges don't consume entries
    EXPECT_FALSE(m.full());
    m.allocate(2, 0);
    EXPECT_TRUE(m.full());
    m.allocate(2, 1); // merging while full is fine
    EXPECT_EQ(m.waiters(2), 2u);
}

TEST(Mshr, PeekWaitersIsNonDestructive)
{
    File m(4);
    m.allocate(5, 42);
    const auto *w = m.peekWaiters(5);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->size(), 1u);
    EXPECT_TRUE(m.contains(5));
    EXPECT_EQ(m.peekWaiters(6), nullptr);
}

TEST(MshrDeath, OverflowAndUnknownReleasePanic)
{
    File m(1);
    m.allocate(1, 0);
    EXPECT_DEATH(m.allocate(2, 0), "overflow");
    EXPECT_DEATH(m.release(99), "unknown");
}

} // namespace
} // namespace idyll
