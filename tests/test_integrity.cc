/**
 * @file
 * Tests for the simulation integrity subsystem: fault-plan parsing,
 * injector determinism, the translation-coherence oracle (including
 * seeded protocol violations it must catch), the no-progress
 * watchdog, and end-to-end oracle-clean / fault-convergence runs.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "core/shard_sched.hh"
#include "harness/cli.hh"
#include "harness/runner.hh"
#include "harness/system.hh"
#include "sim/event_queue.hh"
#include "sim/integrity.hh"
#include "workloads/workload.hh"

namespace idyll
{
namespace
{

// ------------------------------------------------------------------
// Fault plans
// ------------------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar)
{
    std::string err;
    auto plan = parseFaultPlan(
        "inval.delay=800@0.3,ack.dup@0.2,inval.drop@0.05,"
        "migreq.delay=100",
        &err);
    ASSERT_TRUE(plan) << err;
    ASSERT_EQ(plan->rules.size(), 4u);

    EXPECT_EQ(plan->rules[0].msg, FaultMsg::Inval);
    EXPECT_EQ(plan->rules[0].action, FaultRule::Action::Delay);
    EXPECT_EQ(plan->rules[0].value, 800u);
    EXPECT_NEAR(plan->rules[0].probability, 0.3, 1e-9);

    EXPECT_EQ(plan->rules[1].msg, FaultMsg::Ack);
    EXPECT_EQ(plan->rules[1].action, FaultRule::Action::Duplicate);
    EXPECT_EQ(plan->rules[1].value, 500u); // default copy delay

    EXPECT_EQ(plan->rules[2].action, FaultRule::Action::Drop);
    EXPECT_EQ(plan->rules[3].msg, FaultMsg::MigReq);
    EXPECT_TRUE(plan->hasDrops());
}

TEST(FaultPlan, EmptyPlanIsEmpty)
{
    std::string err;
    auto plan = parseFaultPlan("", &err);
    ASSERT_TRUE(plan) << err;
    EXPECT_TRUE(plan->empty());
    EXPECT_FALSE(plan->hasDrops());
}

TEST(FaultPlan, RejectsIllegalRules)
{
    const char *bad[] = {
        "inval.teleport",    // unknown action
        "warp.delay=100",    // unknown message class
        "migreq.drop",       // unrecoverable: no retry path
        "inval.delay",       // delay needs a cycle count
        "inval.delay=0",     // zero delay is a no-op
        "inval.drop=100",    // drop takes no value
        "inval.delay=10@2",  // probability outside [0, 1]
        "inval.delay=10@-1", // probability outside [0, 1]
        "ack",               // missing '.'
    };
    for (const char *text : bad) {
        std::string err;
        EXPECT_FALSE(parseFaultPlan(text, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(FaultInjector, DeterministicForFixedSeed)
{
    std::string err;
    auto plan = parseFaultPlan(
        "inval.delay=100@0.5,ack.dup@0.3,inval.drop@0.2", &err);
    ASSERT_TRUE(plan) << err;

    FaultInjector a(*plan, 1234);
    FaultInjector b(*plan, 1234);
    for (int i = 0; i < 600; ++i) {
        const auto msg = static_cast<FaultMsg>(i % 3);
        // Decisions are a pure hash of (seed, message key, rule), so
        // two injectors with the same seed agree key by key.
        const auto key = static_cast<std::uint64_t>(i);
        const auto da = a.decide(msg, key);
        const auto db = b.decide(msg, key);
        EXPECT_EQ(da.drop, db.drop);
        EXPECT_EQ(da.extraDelay, db.extraDelay);
        EXPECT_EQ(da.duplicate, db.duplicate);
        EXPECT_EQ(da.duplicateDelay, db.duplicateDelay);
    }
    a.foldStats();
    b.foldStats();
    EXPECT_EQ(a.stats().delayed.value(), b.stats().delayed.value());
    EXPECT_EQ(a.stats().duplicated.value(),
              b.stats().duplicated.value());
    EXPECT_EQ(a.stats().dropped.value(), b.stats().dropped.value());
    // With 200 rolls per class, every rule fires at least once.
    EXPECT_GT(a.stats().delayed.value(), 0u);
    EXPECT_GT(a.stats().duplicated.value(), 0u);
    EXPECT_GT(a.stats().dropped.value(), 0u);
}

// ------------------------------------------------------------------
// Oracle unit behaviour
// ------------------------------------------------------------------

TEST(Oracle, CleanProtocolFinalizes)
{
    EventQueue eq;
    TranslationOracle oracle(eq, 2, 64);
    oracle.setIrmbProbe([](GpuId, Vpn) { return true; });

    oracle.onHostInstall(3, 10);
    oracle.onLocalInstall(0, 3, 10, true);
    oracle.onServeFromLocalPte(0, 3, 10, /*write=*/true);

    // Migrate: round targets the holder, holder drops, round done.
    oracle.onInvalRoundStart(3, 1, 0x1u);
    oracle.onLocalDrop(0, 3);
    oracle.onInvalRoundComplete(3, 1);

    oracle.onHostInstall(3, 11);
    oracle.onLocalInstall(1, 3, 11, true);
    oracle.onServeFromLocalPte(1, 3, 11, /*write=*/false);

    oracle.finalize();
    EXPECT_GT(oracle.checks(), 0u);
    EXPECT_GT(oracle.trace().recorded(), 0u);
}

TEST(Oracle, BufferedInvalidationMayDrainLater)
{
    EventQueue eq;
    TranslationOracle oracle(eq, 2, 64);
    oracle.setIrmbProbe([](GpuId, Vpn) { return false; });

    oracle.onHostInstall(4, 20);
    oracle.onLocalInstall(0, 4, 20, false);
    // Lazy apply: the round completes while the PTE write sits in the
    // IRMB; buffered holders are exempt from the round checks.
    oracle.onInvalRoundStart(4, 1, 0x1u);
    oracle.onInvalBuffered(0, 4);
    oracle.onInvalRoundComplete(4, 1);
    oracle.onInvalDrained(0, 4);

    oracle.finalize(); // drained: nothing left to probe
}

TEST(OracleDeath, UnderInvalidationIsFatal)
{
    EventQueue eq;
    TranslationOracle oracle(eq, 4, 64);
    oracle.onHostInstall(5, 100);
    oracle.onLocalInstall(0, 5, 100, true);
    oracle.onLocalInstall(1, 5, 100, false);
    // The round misses GPU 1, which still holds a servable mapping.
    EXPECT_DEATH(oracle.onInvalRoundStart(5, 1, 0x1u),
                 "under-invalidation");
}

TEST(OracleDeath, LostIrmbDrainIsFatal)
{
    EventQueue eq;
    TranslationOracle oracle(eq, 2, 64);
    // The probe says the entry is gone from the real IRMB, yet no
    // drain was ever reported: the invalidation was lost.
    oracle.setIrmbProbe([](GpuId, Vpn) { return false; });
    oracle.onHostInstall(9, 50);
    oracle.onLocalInstall(0, 9, 50, false);
    oracle.onInvalBuffered(0, 9);
    EXPECT_DEATH(oracle.finalize(), "lost invalidation");
}

TEST(OracleDeath, ServeAfterRoundCompleteIsFatal)
{
    EventQueue eq;
    TranslationOracle oracle(eq, 2, 64);
    oracle.onHostInstall(7, 42);
    oracle.onLocalInstall(1, 7, 42, true);
    oracle.onInvalRoundStart(7, 1, 0x2u);
    oracle.onLocalDrop(1, 7);
    oracle.onInvalRoundComplete(7, 1);
    EXPECT_DEATH(oracle.onServeFromLocalPte(1, 7, 42, false),
                 "served");
}

TEST(OracleDeath, WrongPfnServeIsFatal)
{
    EventQueue eq;
    TranslationOracle oracle(eq, 2, 64);
    oracle.onHostInstall(8, 60);
    oracle.onLocalInstall(0, 8, 60, true);
    EXPECT_DEATH(oracle.onServeFromLocalPte(0, 8, 61, false),
                 "does not match");
}

TEST(OracleDeath, ViolationNamesOwningShard)
{
    // With a shard map installed, a violation report attributes the
    // offending GPU to the event-core shard it would execute on in a
    // --shards run: gpu g -> shard 1 + g % (shards - 1). Oracle runs
    // themselves are serialized, so this is what lets a serial repro
    // of a sharded failure name the shard to stare at.
    EventQueue eq;
    TranslationOracle oracle(eq, 2, 64);
    oracle.setShardMap(3); // host shard + 2 device shards
    oracle.onHostInstall(7, 42);
    oracle.onLocalInstall(1, 7, 42, true);
    oracle.onInvalRoundStart(7, 1, 0x2u);
    oracle.onLocalDrop(1, 7);
    oracle.onInvalRoundComplete(7, 1);
    // GPU 1 maps to shard 1 + 1 % 2 == 2.
    EXPECT_DEATH(oracle.onServeFromLocalPte(1, 7, 42, false),
                 "served after invalidation.*\\[shard 2\\]");
}

// ------------------------------------------------------------------
// Watchdog
// ------------------------------------------------------------------

TEST(Watchdog, QuietWhenProgressIsReported)
{
    EventQueue eq;
    eq.configureWatchdog(/*maxIdleEvents=*/10, /*maxIdleTicks=*/0);
    for (int i = 0; i < 100; ++i)
        eq.schedule(i + 1, [&] { eq.noteProgress(); });
    eq.run();
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(WatchdogDeath, TripsOnSchedulingCycle)
{
    EXPECT_EXIT(
        {
            EventQueue eq;
            eq.configureWatchdog(/*maxIdleEvents=*/200,
                                 /*maxIdleTicks=*/0,
                                 [](std::ostream &os) {
                                     os << "cycle diagnostics\n";
                                 });
            // An event that reschedules itself forever and never
            // reports progress: the classic livelocked protocol.
            std::function<void()> spin;
            spin = [&] { eq.schedule(1, spin); };
            eq.schedule(1, spin);
            eq.run();
        },
        ::testing::ExitedWithCode(kWatchdogExitCode), "watchdog");
}

TEST(WatchdogDeath, ShardedTripNamesTheStalledShard)
{
    // In a sharded run the watchdog is fanned out per shard; a
    // livelock confined to one device shard must be attributed to
    // THAT shard in the report (and keep the distinct exit code).
    EXPECT_EXIT(
        {
            EventQueue eq;
            ShardScheduler sched(eq, /*shards=*/2, /*numGpus=*/1,
                                 /*lookahead=*/5);
            eq.configureWatchdog(/*maxIdleEvents=*/200,
                                 /*maxIdleTicks=*/0);
            std::function<void()> spin;
            spin = [&] { eq.schedule(1, spin); };
            {
                // The livelocked protocol runs on gpu 0's shard (1);
                // shard 0 stays healthy and idle.
                ShardScope scope(sched.shardQueue(1), 1);
                eq.scheduleAt(0, spin);
            }
            eq.run();
        },
        ::testing::ExitedWithCode(kWatchdogExitCode),
        "watchdog\\[shard 1\\]");
}

// ------------------------------------------------------------------
// End to end
// ------------------------------------------------------------------

SystemConfig
smallConfig(const std::string &scheme)
{
    auto preset = schemeByName(scheme);
    EXPECT_TRUE(preset) << scheme;
    SystemConfig cfg = scaledForSim(*preset);
    cfg.cusPerGpu = 16; // keep the full-system runs quick
    return cfg;
}

constexpr double kSmokeScale = 0.05;

TEST(IntegrityE2E, OracleCleanAcrossSchemes)
{
    for (const char *scheme : {"baseline", "idyll", "inmem", "zero"}) {
        SystemConfig cfg = smallConfig(scheme);
        cfg.integrity.oracle = true;
        MultiGpuSystem system(cfg);
        system.run(Workload::byName("KM", kSmokeScale));
        ASSERT_NE(system.oracle(), nullptr);
        EXPECT_GT(system.oracle()->checks(), 0u) << scheme;
    }
}

TEST(IntegrityE2EDeath, SuppressedInvalidationCaughtByOracle)
{
    EXPECT_DEATH(
        {
            SystemConfig cfg = smallConfig("baseline");
            cfg.migrationPolicy = MigrationPolicy::OnTouch;
            cfg.integrity.oracle = true;
            MultiGpuSystem system(cfg);
            // Mutation: the driver silently skips every invalidation
            // aimed at GPU 0 -- exactly the under-invalidation bug
            // class the oracle exists to catch.
            system.driver().suppressInvalTargetsForTest(
                [](GpuId g, Vpn) { return g == 0; });
            system.run(Workload::byName("KM", kSmokeScale));
        },
        "under-invalidation");
}

TEST(IntegrityE2E, FaultedRunIsDeterministicAndConverges)
{
    SystemConfig clean = smallConfig("idyll");
    std::uint64_t cleanDigest = 0;
    {
        MultiGpuSystem system(clean);
        system.run(Workload::byName("KM", kSmokeScale));
        cleanDigest = system.translationStateDigest();
    }

    auto faultedRun = [&](const std::string &plan) {
        SystemConfig faulted = clean;
        faulted.integrity.oracle = true;
        faulted.integrity.faultPlan = plan;
        faulted.integrity.invalRetryTimeout = 20000;
        MultiGpuSystem system(faulted);
        system.run(Workload::byName("KM", kSmokeScale));
        const FaultStats &fs = system.faultInjector()->stats();
        EXPECT_GT(fs.delayed.value() + fs.duplicated.value() +
                      fs.dropped.value(),
                  0u);
        return system.translationStateDigest();
    };

    // Duplicated acks are absorbed by the driver without generating
    // any response traffic, so they perturb no message timing: the
    // faulted run must reproduce the fault-free final page-table
    // state bit for bit.
    EXPECT_EQ(faultedRun("ack.dup@0.5"), cleanDigest);

    // Delays, drops, and duplicated invalidations shift when
    // migrations complete, which legitimately changes access-counter
    // placement decisions — final placement may differ from the
    // fault-free run. What must hold: the run is exactly reproducible
    // for a fixed seed, and the oracle + final TLB verification (both
    // active here) prove the state it converges to is consistent.
    const std::string perturbing =
        "inval.delay=800@0.3,ack.dup@0.2,inval.drop@0.1";
    const std::uint64_t first = faultedRun(perturbing);
    const std::uint64_t second = faultedRun(perturbing);
    EXPECT_EQ(first, second);
}

TEST(IntegrityE2E, DroppedInvalidationsRecoveredByRetry)
{
    SystemConfig cfg = smallConfig("baseline");
    cfg.migrationPolicy = MigrationPolicy::OnTouch;
    cfg.integrity.oracle = true;
    cfg.integrity.faultPlan = "inval.drop@0.2,ack.drop@0.2";
    cfg.integrity.invalRetryTimeout = 20000;
    MultiGpuSystem system(cfg);
    system.run(Workload::byName("KM", kSmokeScale));
    const DriverStats &ds = system.driver().stats();
    EXPECT_GT(ds.invalRetries.value(), 0u);
    EXPECT_GT(ds.invalRetryTimeouts.value(), 0u);
    // Every migration still completed: nothing left in flight.
    EXPECT_GT(system.oracle()->checks(), 0u);
}

TEST(IntegrityE2E, RetryBackoffIsInertWithoutFaults)
{
    // The capped-exponential retry timer draws jitter from a seeded
    // RNG — but only from the second attempt on. A fault-free run
    // never retries, so arming the timer must not perturb the
    // simulation at all: identical digest AND identical final tick
    // with the timer armed, disarmed, or set to a different base.
    auto run = [](Cycles retryTimeout) {
        SystemConfig cfg = smallConfig("idyll");
        cfg.integrity.invalRetryTimeout = retryTimeout;
        MultiGpuSystem system(cfg);
        const SimResults r =
            system.run(Workload::byName("KM", kSmokeScale));
        return std::make_pair(system.translationStateDigest(),
                              r.execTicks);
    };
    const auto disarmed = run(0);
    EXPECT_EQ(run(20000), disarmed);
    EXPECT_EQ(run(500), disarmed);
}

TEST(IntegrityE2E, RetryBackoffDelaysGrowDeterministically)
{
    // Under heavy ack drops the same seed must produce the same
    // retry schedule (seeded jitter, no wall-clock anywhere).
    auto run = [] {
        SystemConfig cfg = smallConfig("baseline");
        cfg.migrationPolicy = MigrationPolicy::OnTouch;
        cfg.integrity.oracle = true;
        cfg.integrity.faultPlan = "ack.drop@0.5";
        cfg.integrity.invalRetryTimeout = 5000;
        MultiGpuSystem system(cfg);
        const SimResults r =
            system.run(Workload::byName("KM", kSmokeScale));
        const DriverStats &ds = system.driver().stats();
        EXPECT_GT(ds.invalRetries.value(), 0u);
        return std::make_pair(r.execTicks, ds.invalRetries.value());
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace idyll
