/**
 * @file
 * Unit tests for the split per-level MMU-cache hierarchy, including a
 * randomized shadow-walker reference model that replays install /
 * invalidate / walk churn against an exact set-based mirror.
 */

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "gmmu/mmu_cache.hh"
#include "mem/page_table.hh"
#include "sim/config.hh"
#include "sim/rng.hh"

namespace idyll
{
namespace
{

GmmuConfig
defaultGmmu()
{
    return SystemConfig{}.gmmu;
}

TEST(MmuCache, MissOnEmpty)
{
    MmuCacheHierarchy caches(defaultGmmu(), kLayout4K);
    EXPECT_EQ(caches.deepestValidHit(0x12345, 1), 0u);
    EXPECT_EQ(caches.misses().value(), 1u);
    EXPECT_EQ(caches.hits().value(), 0u);
}

TEST(MmuCache, FillThenDeepestHitIsLevelOne)
{
    MmuCacheHierarchy caches(defaultGmmu(), kLayout4K);
    caches.fill(0x12345, 1);
    EXPECT_EQ(caches.deepestValidHit(0x12345, 1), 1u);
    EXPECT_EQ(caches.hits().value(), 1u);
    EXPECT_EQ(caches.levelStats(1).hits.value(), 1u);
}

TEST(MmuCache, NeighborsShareLeafPointer)
{
    MmuCacheHierarchy caches(defaultGmmu(), kLayout4K);
    caches.fill(0x1000, 1);
    // VPNs differing only in the low 9 bits share every node pointer.
    EXPECT_EQ(caches.deepestValidHit(0x11FF, 1), 1u);
    // A VPN in the next leaf node only shares the upper levels.
    EXPECT_EQ(caches.deepestValidHit(0x1200, 1), 2u);
}

TEST(MmuCache, PartialFillGivesUpperLevelHit)
{
    MmuCacheHierarchy caches(defaultGmmu(), kLayout4K);
    caches.fill(0x40000000, 3); // only node levels 3..4 cached
    EXPECT_EQ(caches.deepestValidHit(0x40000000, 1), 3u);
    EXPECT_EQ(caches.levelStats(3).fills.value(), 1u);
    EXPECT_EQ(caches.levelStats(1).fills.value(), 0u);
}

TEST(MmuCache, InvalidateVpnRemovesItsPath)
{
    MmuCacheHierarchy caches(defaultGmmu(), kLayout4K);
    caches.fill(0x2000, 1);
    caches.invalidateVpn(0x2000);
    EXPECT_EQ(caches.deepestValidHit(0x2000, 1), 0u);
    EXPECT_EQ(caches.staleDrops(), kLayout4K.numLevels - 1);
}

TEST(MmuCache, StaleEntriesBelowPresentPathAreClampedAndErased)
{
    MmuCacheHierarchy caches(defaultGmmu(), kLayout4K);
    caches.fill(0x2000, 1); // levels 1..4 cached
    // The present path stops at node level 3 (e.g. the lower nodes
    // were torn down): hits at levels 1-2 would start the walk below
    // the tree — the old stale-PWC bug, accesses underflowing to 0.
    const std::uint32_t hit = caches.deepestValidHit(0x2000, 3);
    EXPECT_EQ(hit, 3u);
    EXPECT_EQ(caches.levelStats(1).staleDrops.value(), 1u);
    EXPECT_EQ(caches.levelStats(2).staleDrops.value(), 1u);
    // The stale entries are gone: a fully-permissive re-probe now
    // finds level 3, not the erased level-1 pointer.
    EXPECT_EQ(caches.deepestValidHit(0x2000, 1), 3u);
}

TEST(MmuCache, CapacityThrashing)
{
    GmmuConfig cfg = defaultGmmu();
    cfg.mmuCache = {{16, 4}, {8, 4}, {8, 4}, {8, 4}};
    MmuCacheHierarchy caches(cfg, kLayout4K);
    // Fill far more distinct leaf regions than level 1 can hold.
    for (Vpn v = 0; v < 64; ++v)
        caches.fill(v << 9, 1);
    EXPECT_LE(caches.occupancy(1), 16u);
    std::uint32_t leafHits = 0;
    for (Vpn v = 0; v < 64; ++v)
        leafHits += (caches.deepestValidHit(v << 9, 1) == 1);
    EXPECT_LT(leafHits, 64u); // some leaf pointers were evicted
}

TEST(MmuCache, LevelsAreIndividuallySized)
{
    GmmuConfig cfg = defaultGmmu();
    cfg.mmuCache = {{64, 8}, {32, 4}, {16, 4}, {8, 4}};
    MmuCacheHierarchy caches(cfg, kLayout4K);
    ASSERT_EQ(caches.numCachedLevels(), kLayout4K.numLevels - 1);
    EXPECT_EQ(caches.capacity(1), 64u);
    EXPECT_EQ(caches.capacity(2), 32u);
    EXPECT_EQ(caches.capacity(3), 16u);
    EXPECT_EQ(caches.capacity(4), 8u);
}

TEST(MmuCache, ShortConfigVectorRepeatsForDeeperLevels)
{
    GmmuConfig cfg = defaultGmmu();
    cfg.mmuCache = {{64, 8}, {16, 4}};
    MmuCacheHierarchy caches(cfg, kLayout2M);
    ASSERT_EQ(caches.numCachedLevels(), kLayout2M.numLevels - 1);
    EXPECT_EQ(caches.capacity(1), 64u);
    EXPECT_EQ(caches.capacity(2), 16u);
    EXPECT_EQ(caches.capacity(3), 16u); // last entry repeats
}

TEST(MmuCache, DeadEntryEvictionSharesOnePredictor)
{
    GmmuConfig cfg = defaultGmmu();
    cfg.deadEntryEviction = true;
    cfg.mmuCache = {{8, 4}, {8, 4}, {8, 4}, {8, 4}};
    MmuCacheHierarchy caches(cfg, kLayout4K);
    ASSERT_NE(caches.predictor(), nullptr);
    // Stream never-reused leaf pointers through the tiny level 1; the
    // predictor learns the pattern and demotes later insertions.
    for (Vpn v = 0; v < 4096; ++v)
        caches.fill(v << 9, 1);
    EXPECT_GT(caches.predictor()->trainedDead().value(), 0u);
    EXPECT_GT(caches.deadEvictions(1).value(), 0u);
}

/**
 * Shadow-walker reference model. With caches large enough that no
 * capacity eviction can occur, the hierarchy's contents are an exact
 * function of the fill/invalidate/clamp stream, so a std::set mirror
 * must agree with deepestValidHit on every probe. The churn mixes
 * mapping installs, invalidations (migration-style), demand walks of
 * mapped and unmapped VPNs, and full-path update fills.
 */
TEST(MmuCacheReference, ShadowWalkerAgreesUnderChurn)
{
    const AddrLayout layout = kLayout4K;
    GmmuConfig cfg = defaultGmmu();
    // Generous geometry: 4096 entries/level over at most a few
    // hundred distinct prefixes -> capacity evictions impossible.
    cfg.mmuCache = {{4096, 8}};
    MmuCacheHierarchy caches(cfg, layout);
    RadixPageTable pt(layout);

    std::set<std::pair<std::uint32_t, std::uint64_t>> shadow;
    auto shadowKey = [&](std::uint32_t level, Vpn vpn) {
        return std::make_pair(level, vpn >> (kLevelBits * level));
    };
    auto shadowFill = [&](Vpn vpn, std::uint32_t from) {
        for (std::uint32_t l = std::max(from, 1u);
             l < layout.numLevels; ++l)
            shadow.insert(shadowKey(l, vpn));
    };
    auto shadowInvalidate = [&](Vpn vpn) {
        for (std::uint32_t l = 1; l < layout.numLevels; ++l)
            shadow.erase(shadowKey(l, vpn));
    };
    auto shadowProbe = [&](Vpn vpn, std::uint32_t stop) {
        for (std::uint32_t l = 1; l < layout.numLevels; ++l) {
            if (l < stop) {
                shadow.erase(shadowKey(l, vpn)); // stale clamp
                continue;
            }
            if (shadow.count(shadowKey(l, vpn)))
                return l;
        }
        return 0u;
    };

    Rng rng(20260808);
    // VPNs spread across all tree levels: shared leaves, shared
    // L2/L3 interiors, and far-apart roots.
    auto randomVpn = [&] {
        const Vpn base = rng.below(4) << 36 | rng.below(4) << 27 |
                         rng.below(4) << 18 | rng.below(4) << 9;
        return base | rng.below(8);
    };

    for (int step = 0; step < 20000; ++step) {
        const Vpn vpn = randomVpn();
        switch (rng.below(5)) {
          case 0: // map (update walk: install, then full-path fill)
            pt.install(vpn, makeDevicePfn(0, vpn & 0xFFFFFF));
            caches.fill(vpn, 1);
            shadowFill(vpn, 1);
            break;
          case 1: // migration invalidation
            pt.invalidate(vpn);
            caches.invalidateVpn(vpn);
            shadowInvalidate(vpn);
            break;
          default: { // demand walk (possibly of an absent path)
            const std::uint32_t present = pt.presentLevels(vpn);
            const std::uint32_t stop =
                std::max(layout.numLevels - present + 1, 1u);
            const std::uint32_t hit = caches.deepestValidHit(vpn, stop);
            const std::uint32_t expected = shadowProbe(vpn, stop);
            ASSERT_EQ(hit, expected)
                << "step " << step << " vpn " << vpn << " stop "
                << stop;
            // The headline invariant: never below the present path,
            // so the modeled walk always costs >= 1 access.
            if (hit) {
                ASSERT_GE(hit, stop);
            }
            const std::uint32_t start = hit ? hit : layout.numLevels;
            ASSERT_GE(start - stop + 1, 1u);
            ASSERT_LE(start - stop + 1, layout.numLevels);
            caches.fill(vpn, stop);
            shadowFill(vpn, stop);
            break;
          }
        }
    }
    // The churn actually exercised every path.
    EXPECT_GT(caches.hits().value(), 0u);
    EXPECT_GT(caches.misses().value(), 0u);
    EXPECT_GT(caches.staleDrops(), 0u);
}

/**
 * Same churn under starved caches: the exact mirror no longer applies
 * (LRU evictions), but the clamp invariants must still hold at every
 * probe, for both replacement policies.
 */
TEST(MmuCacheReference, ClampInvariantsHoldUnderPressure)
{
    for (const bool deadEvict : {false, true}) {
        const AddrLayout layout = kLayout4K;
        GmmuConfig cfg = defaultGmmu();
        cfg.mmuCache = {{8, 4}, {8, 4}, {4, 4}, {4, 4}};
        cfg.deadEntryEviction = deadEvict;
        MmuCacheHierarchy caches(cfg, layout);
        RadixPageTable pt(layout);
        Rng rng(7);
        for (int step = 0; step < 20000; ++step) {
            const Vpn vpn = rng.below(4) << 36 | rng.below(4) << 27 |
                            rng.below(8) << 18 | rng.below(8) << 9 |
                            rng.below(8);
            if (rng.below(4) == 0) {
                pt.install(vpn, makeDevicePfn(0, vpn & 0xFFFFFF));
                caches.fill(vpn, 1);
            } else if (rng.below(8) == 0) {
                caches.invalidateVpn(vpn);
            } else {
                const std::uint32_t present = pt.presentLevels(vpn);
                const std::uint32_t stop =
                    std::max(layout.numLevels - present + 1, 1u);
                const std::uint32_t hit =
                    caches.deepestValidHit(vpn, stop);
                if (hit) {
                    ASSERT_GE(hit, stop) << "walk below present path";
                }
                caches.fill(vpn, stop);
            }
        }
    }
}

} // namespace
} // namespace idyll
