/**
 * @file
 * Unit tests for the GMMU: walk costs, PWC interaction, invalidation
 * and update walks, batching, walker contention, and the idle hook.
 */

#include <gtest/gtest.h>

#include "gmmu/gmmu.hh"
#include "sim/event_queue.hh"

namespace idyll
{
namespace
{

struct GmmuFixture : ::testing::Test
{
    GmmuFixture() : pt(kLayout4K), gmmu(eq, cfg, kLayout4K, pt) {}

    EventQueue eq;
    GmmuConfig cfg; // 8 walkers, 100 cy/level, 128-entry PWC
    RadixPageTable pt;
    Gmmu gmmu;
};

TEST_F(GmmuFixture, ColdDemandWalkCostsFullDepth)
{
    pt.install(0x500, makeDevicePfn(0, 3));
    Tick done_at = 0;
    WalkResult result;
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0x500;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        result = r;
    };
    gmmu.submit(std::move(req));
    eq.run();
    // PWC lookup (1) + 5 node accesses x 100.
    EXPECT_EQ(done_at, 501u);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.pte.pfn(), makeDevicePfn(0, 3));
}

TEST_F(GmmuFixture, WarmWalkSkipsToLeafViaPwc)
{
    pt.install(0x500, makeDevicePfn(0, 3));
    bool first_done = false;
    WalkRequest warm;
    warm.kind = WalkKind::Demand;
    warm.vpn = 0x500;
    Tick warm_start = 0, warm_end = 0;
    warm.done = [&](const WalkResult &) { warm_end = eq.now(); };

    WalkRequest cold;
    cold.kind = WalkKind::Demand;
    cold.vpn = 0x500;
    cold.done = [&](const WalkResult &) {
        first_done = true;
        warm_start = eq.now();
        gmmu.submit(std::move(warm));
    };
    gmmu.submit(std::move(cold));
    eq.run();
    EXPECT_TRUE(first_done);
    // Second walk hits the level-1 PWC pointer: 1 + 100.
    EXPECT_EQ(warm_end - warm_start, 101u);
}

TEST_F(GmmuFixture, WalkOfAbsentPathTerminatesEarly)
{
    Tick done_at = 0;
    WalkResult result;
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0xDEAD;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        result = r;
    };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_FALSE(result.found);
    // Only the root is read before the empty entry is found.
    EXPECT_EQ(done_at, 101u);
}

TEST_F(GmmuFixture, InvalidateReportsNecessity)
{
    pt.install(0x77, makeDevicePfn(0, 1));
    std::uint32_t invalidated = 99;
    WalkRequest req;
    req.kind = WalkKind::Invalidate;
    req.vpn = 0x77;
    req.done = [&](const WalkResult &r) { invalidated = r.invalidated; };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_EQ(invalidated, 1u);
    EXPECT_EQ(pt.findValid(0x77), nullptr);

    // Invalidating again is the paper's "unnecessary" case: it still
    // walks, but clears nothing.
    WalkRequest again;
    again.kind = WalkKind::Invalidate;
    again.vpn = 0x77;
    again.done = [&](const WalkResult &r) { invalidated = r.invalidated; };
    gmmu.submit(std::move(again));
    eq.run();
    EXPECT_EQ(invalidated, 0u);
    EXPECT_EQ(gmmu.stats().invalWalks.value(), 2u);
}

TEST_F(GmmuFixture, UpdateInstallsMapping)
{
    Pte fresh;
    fresh.setValid(true);
    fresh.setPfn(makeDevicePfn(1, 9));
    fresh.setWritable(true);
    WalkRequest req;
    req.kind = WalkKind::Update;
    req.vpn = 0xBEEF;
    req.newPte = fresh;
    bool done = false;
    req.done = [&](const WalkResult &) { done = true; };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_TRUE(done);
    ASSERT_NE(pt.findValid(0xBEEF), nullptr);
    EXPECT_EQ(pt.findValid(0xBEEF)->pfn(), makeDevicePfn(1, 9));
}

TEST_F(GmmuFixture, BatchInvalidateAmortizesTheWalk)
{
    // Install 8 pages sharing one leaf node (one IRMB base).
    std::vector<Vpn> batch;
    for (Vpn v = 0x2000; v < 0x2008; ++v) {
        pt.install(v, makeDevicePfn(0, v));
        batch.push_back(v);
    }
    Tick done_at = 0;
    std::uint32_t invalidated = 0;
    WalkRequest req;
    req.kind = WalkKind::BatchInvalidate;
    req.batch = batch;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        invalidated = r.invalidated;
    };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_EQ(invalidated, 8u);
    for (Vpn v : batch)
        EXPECT_EQ(pt.findValid(v), nullptr);
    // One full walk + write (601) + 7 x single PTE write (100).
    EXPECT_EQ(done_at, 601u + 700u);
    // Far cheaper than 8 individual cold invalidations (8 x 601).
    EXPECT_LT(done_at, 8u * 601u);
}

TEST_F(GmmuFixture, NinthWalkWaitsForAFreeWalker)
{
    pt.install(0x10, makeDevicePfn(0, 0));
    std::vector<Tick> completions;
    for (int i = 0; i < 9; ++i) {
        WalkRequest req;
        req.kind = WalkKind::Demand;
        req.vpn = 0x10;
        req.done = [&](const WalkResult &) {
            completions.push_back(eq.now());
        };
        gmmu.submit(std::move(req));
    }
    EXPECT_EQ(gmmu.queueDepth(), 1u); // 8 dispatched, 1 queued
    eq.run();
    ASSERT_EQ(completions.size(), 9u);
    // The 9th walk could only start once a walker freed up.
    EXPECT_GT(gmmu.stats().queueWait.max(), 0.0);
    EXPECT_EQ(gmmu.stats().demandWalks.value(), 9u);
}

TEST_F(GmmuFixture, IdleHookFiresWhenQueueDrains)
{
    pt.install(0x1, makeDevicePfn(0, 0));
    int hook_calls = 0;
    gmmu.setIdleHook([&] { ++hook_calls; });
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0x1;
    req.done = [](const WalkResult &) {};
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_GE(hook_calls, 1);
}

TEST_F(GmmuFixture, BusyCyclesAttributedPerKind)
{
    pt.install(0x9, makeDevicePfn(0, 0));
    WalkRequest demand;
    demand.kind = WalkKind::Demand;
    demand.vpn = 0x9;
    demand.done = [](const WalkResult &) {};
    gmmu.submit(std::move(demand));
    WalkRequest inval;
    inval.kind = WalkKind::Invalidate;
    inval.vpn = 0x9;
    inval.done = [](const WalkResult &) {};
    gmmu.submit(std::move(inval));
    eq.run();
    EXPECT_GT(gmmu.stats().busyDemandCycles.value(), 0u);
    EXPECT_GT(gmmu.stats().busyInvalCycles.value(), 0u);
    EXPECT_EQ(gmmu.stats().demandWalks.value(), 1u);
    EXPECT_EQ(gmmu.stats().invalWalks.value(), 1u);
}

} // namespace
} // namespace idyll
