/**
 * @file
 * Unit tests for the GMMU: walk costs, MMU-cache interaction,
 * invalidation and update walks, batching, walker contention, walk-
 * queue backpressure, and the idle hook.
 */

#include <gtest/gtest.h>

#include "gmmu/gmmu.hh"
#include "sim/event_queue.hh"

namespace idyll
{
namespace
{

struct GmmuFixture : ::testing::Test
{
    GmmuFixture() : pt(kLayout4K), gmmu(eq, cfg, kLayout4K, pt) {}

    EventQueue eq;
    GmmuConfig cfg; // 8 walkers, 100 cy/level, default MMU caches
    RadixPageTable pt;
    Gmmu gmmu;
};

TEST_F(GmmuFixture, ColdDemandWalkCostsFullDepth)
{
    pt.install(0x500, makeDevicePfn(0, 3));
    Tick done_at = 0;
    WalkResult result;
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0x500;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        result = r;
    };
    gmmu.submit(std::move(req));
    eq.run();
    // PWC lookup (1) + 5 node accesses x 100.
    EXPECT_EQ(done_at, 501u);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.pte.pfn(), makeDevicePfn(0, 3));
}

TEST_F(GmmuFixture, WarmWalkSkipsToLeafViaPwc)
{
    pt.install(0x500, makeDevicePfn(0, 3));
    bool first_done = false;
    WalkRequest warm;
    warm.kind = WalkKind::Demand;
    warm.vpn = 0x500;
    Tick warm_start = 0, warm_end = 0;
    warm.done = [&](const WalkResult &) { warm_end = eq.now(); };

    WalkRequest cold;
    cold.kind = WalkKind::Demand;
    cold.vpn = 0x500;
    cold.done = [&](const WalkResult &) {
        first_done = true;
        warm_start = eq.now();
        gmmu.submit(std::move(warm));
    };
    gmmu.submit(std::move(cold));
    eq.run();
    EXPECT_TRUE(first_done);
    // Second walk hits the level-1 PWC pointer: 1 + 100.
    EXPECT_EQ(warm_end - warm_start, 101u);
}

TEST_F(GmmuFixture, WalkOfAbsentPathTerminatesEarly)
{
    Tick done_at = 0;
    WalkResult result;
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0xDEAD;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        result = r;
    };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_FALSE(result.found);
    // Only the root is read before the empty entry is found.
    EXPECT_EQ(done_at, 101u);
}

TEST_F(GmmuFixture, InvalidateReportsNecessity)
{
    pt.install(0x77, makeDevicePfn(0, 1));
    std::uint32_t invalidated = 99;
    WalkRequest req;
    req.kind = WalkKind::Invalidate;
    req.vpn = 0x77;
    req.done = [&](const WalkResult &r) { invalidated = r.invalidated; };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_EQ(invalidated, 1u);
    EXPECT_EQ(pt.findValid(0x77), nullptr);

    // Invalidating again is the paper's "unnecessary" case: it still
    // walks, but clears nothing.
    WalkRequest again;
    again.kind = WalkKind::Invalidate;
    again.vpn = 0x77;
    again.done = [&](const WalkResult &r) { invalidated = r.invalidated; };
    gmmu.submit(std::move(again));
    eq.run();
    EXPECT_EQ(invalidated, 0u);
    EXPECT_EQ(gmmu.stats().invalWalks.value(), 2u);
}

TEST_F(GmmuFixture, UpdateInstallsMapping)
{
    Pte fresh;
    fresh.setValid(true);
    fresh.setPfn(makeDevicePfn(1, 9));
    fresh.setWritable(true);
    WalkRequest req;
    req.kind = WalkKind::Update;
    req.vpn = 0xBEEF;
    req.newPte = fresh;
    bool done = false;
    req.done = [&](const WalkResult &) { done = true; };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_TRUE(done);
    ASSERT_NE(pt.findValid(0xBEEF), nullptr);
    EXPECT_EQ(pt.findValid(0xBEEF)->pfn(), makeDevicePfn(1, 9));
}

TEST_F(GmmuFixture, BatchInvalidateAmortizesTheWalk)
{
    // Install 8 pages sharing one leaf node (one IRMB base).
    std::vector<Vpn> batch;
    for (Vpn v = 0x2000; v < 0x2008; ++v) {
        pt.install(v, makeDevicePfn(0, v));
        batch.push_back(v);
    }
    Tick done_at = 0;
    std::uint32_t invalidated = 0;
    WalkRequest req;
    req.kind = WalkKind::BatchInvalidate;
    req.batch = batch;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        invalidated = r.invalidated;
    };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_EQ(invalidated, 8u);
    for (Vpn v : batch)
        EXPECT_EQ(pt.findValid(v), nullptr);
    // One full walk + write (601) + 7 x single PTE write (100).
    EXPECT_EQ(done_at, 601u + 700u);
    // Far cheaper than 8 individual cold invalidations (8 x 601).
    EXPECT_LT(done_at, 8u * 601u);
}

TEST_F(GmmuFixture, NinthWalkWaitsForAFreeWalker)
{
    pt.install(0x10, makeDevicePfn(0, 0));
    std::vector<Tick> completions;
    for (int i = 0; i < 9; ++i) {
        WalkRequest req;
        req.kind = WalkKind::Demand;
        req.vpn = 0x10;
        req.done = [&](const WalkResult &) {
            completions.push_back(eq.now());
        };
        gmmu.submit(std::move(req));
    }
    EXPECT_EQ(gmmu.queueDepth(), 1u); // 8 dispatched, 1 queued
    eq.run();
    ASSERT_EQ(completions.size(), 9u);
    // The 9th walk could only start once a walker freed up.
    EXPECT_GT(gmmu.stats().queueWait.max(), 0.0);
    EXPECT_EQ(gmmu.stats().demandWalks.value(), 9u);
}

TEST_F(GmmuFixture, StaleCachedPointerCannotMakeAWalkFree)
{
    // Regression for the stale-PWC bug. Seed the MMU caches with a
    // full pointer path for a VPN whose page-table path does NOT
    // exist (the state left behind when a path is torn down under a
    // live cache). The old shared cache answered at level 1, the walk
    // "started" below its stop level, and accesses underflowed to
    // zero — a free walk. The clamped probe must drop the stale
    // pointers and charge the full root read instead.
    gmmu.mmuCache().fill(0xDEAD, 1);
    Tick done_at = 0;
    WalkResult result;
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0xDEAD;
    req.done = [&](const WalkResult &r) {
        done_at = eq.now();
        result = r;
    };
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_FALSE(result.found);
    // Same cost as a cold absent-path walk: lookup (1) + root (100).
    // Before the fix this completed at tick 1 (zero accesses).
    EXPECT_EQ(done_at, 101u);
    // All four stale levels were scrubbed on the way.
    EXPECT_EQ(gmmu.mmuCache().staleDrops(), 4u);
    EXPECT_EQ(gmmu.mmuCache().deepestValidHit(0xDEAD, 1), 0u);
}

TEST_F(GmmuFixture, InvalidateWalkScrubsTheCachedPath)
{
    // A demand walk caches the pointer path; the invalidation walk
    // must flush it (paging-structure caches are not coherent), so
    // the next demand walk pays the full depth again.
    pt.install(0x500, makeDevicePfn(0, 3));
    WalkRequest warm;
    warm.kind = WalkKind::Demand;
    warm.vpn = 0x500;
    warm.done = [](const WalkResult &) {};
    gmmu.submit(std::move(warm));
    eq.run();
    EXPECT_EQ(gmmu.mmuCache().deepestValidHit(0x500, 1), 1u);

    WalkRequest inval;
    inval.kind = WalkKind::Invalidate;
    inval.vpn = 0x500;
    inval.done = [](const WalkResult &) {};
    gmmu.submit(std::move(inval));
    eq.run();
    EXPECT_EQ(gmmu.mmuCache().deepestValidHit(0x500, 1), 0u);
}

TEST_F(GmmuFixture, FullWalkQueueNacksAndRetries)
{
    // Regression for the unbounded walk queue: walkQueueEntries was
    // config-only, every submit was accepted. With two walkers and a
    // 1-deep queue, the 4th concurrent submit must be NACKed, miss
    // the dispatch slot it would have taken from a 64-deep queue
    // (it is still spinning when a walker goes idle), and complete
    // later. Each walk targets a different root subtree so every walk
    // is a cold full-depth one and the NACK delay is visible in the
    // last completion time.
    cfg.walkerThreads = 2;
    cfg.walkQueueEntries = 1;
    Gmmu small(eq, cfg, kLayout4K, pt);
    for (Vpn i = 0; i < 4; ++i)
        pt.install(i << 36, makeDevicePfn(0, i));

    auto lastCompletion = [&](Gmmu &g) {
        const Tick start = eq.now();
        Tick last = 0;
        int done = 0;
        for (Vpn i = 0; i < 4; ++i) {
            WalkRequest req;
            req.kind = WalkKind::Demand;
            req.vpn = i << 36;
            req.done = [&](const WalkResult &) {
                last = eq.now() - start;
                ++done;
            };
            g.submit(std::move(req));
        }
        eq.run();
        EXPECT_EQ(done, 4);
        return last;
    };

    const Tick bounded = lastCompletion(small);
    EXPECT_GT(small.stats().queueFullStalls.value(), 0u);
    // The NACK spins land in the request's queue wait (and from
    // there in the ptw-queue latency phase).
    EXPECT_GT(small.stats().queueWait.max(), 0.0);

    cfg.walkQueueEntries = 64;
    Gmmu roomy(eq, cfg, kLayout4K, pt);
    const Tick unbounded = lastCompletion(roomy);
    EXPECT_EQ(roomy.stats().queueFullStalls.value(), 0u);
    EXPECT_GT(bounded, unbounded);
}

TEST_F(GmmuFixture, IdleHookFiresWhenQueueDrains)
{
    pt.install(0x1, makeDevicePfn(0, 0));
    int hook_calls = 0;
    gmmu.setIdleHook([&] { ++hook_calls; });
    WalkRequest req;
    req.kind = WalkKind::Demand;
    req.vpn = 0x1;
    req.done = [](const WalkResult &) {};
    gmmu.submit(std::move(req));
    eq.run();
    EXPECT_GE(hook_calls, 1);
}

TEST_F(GmmuFixture, BusyCyclesAttributedPerKind)
{
    pt.install(0x9, makeDevicePfn(0, 0));
    WalkRequest demand;
    demand.kind = WalkKind::Demand;
    demand.vpn = 0x9;
    demand.done = [](const WalkResult &) {};
    gmmu.submit(std::move(demand));
    WalkRequest inval;
    inval.kind = WalkKind::Invalidate;
    inval.vpn = 0x9;
    inval.done = [](const WalkResult &) {};
    gmmu.submit(std::move(inval));
    eq.run();
    EXPECT_GT(gmmu.stats().busyDemandCycles.value(), 0u);
    EXPECT_GT(gmmu.stats().busyInvalCycles.value(), 0u);
    EXPECT_EQ(gmmu.stats().demandWalks.value(), 1u);
    EXPECT_EQ(gmmu.stats().invalWalks.value(), 1u);
}

} // namespace
} // namespace idyll
