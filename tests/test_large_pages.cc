/**
 * @file
 * Tests for 2 MB large-page support (Section 7.3): layout math,
 * end-to-end runs, and the migration cost of moving 2 MB at a time.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/system.hh"

namespace idyll
{
namespace
{

SystemConfig
largeCfg()
{
    SystemConfig cfg;
    cfg.pageBits = 21;
    cfg.numGpus = 2;
    cfg.cusPerGpu = 2;
    cfg.warpsPerCu = 2;
    return cfg;
}

TEST(LargePages, SystemUsesFourLevelTables)
{
    MultiGpuSystem sys(largeCfg());
    EXPECT_EQ(sys.layout().numLevels, 4u);
    EXPECT_EQ(sys.layout().pageSize(), 2u * 1024 * 1024);
}

TEST(LargePages, TranslationAndMigrationWork)
{
    SystemConfig cfg = largeCfg();
    cfg.accessCounterThreshold = 4;
    MultiGpuSystem sys(cfg);
    const VAddr va = 5ull << 21;

    sys.gpu(0).access(0, va, false, [] {});
    sys.eventQueue().run();
    EXPECT_EQ(sys.driver().residentPages(0), 1u);

    for (int i = 0; i < 8; ++i) {
        sys.gpu(1).access(0, va + 64 * i, false, [] {});
        sys.eventQueue().run();
    }
    EXPECT_EQ(sys.driver().stats().migrations.value(), 1u);
    EXPECT_EQ(sys.driver().residentPages(1), 1u);
    // The migration moved a full 2 MB page over the interconnect.
    EXPECT_GE(sys.network().classBytes(MsgClass::PageData).value(),
              2u * 1024 * 1024);
}

TEST(LargePages, FullWorkloadRunCompletes)
{
    SystemConfig cfg = SystemConfig::idyllFull();
    cfg.pageBits = 21;
    cfg.cusPerGpu = 8;
    cfg.warpsPerCu = 4;
    cfg.accessCounterThreshold = 8;
    cfg.prepopulate = Prepopulate::HomeShard;

    AppParams params = Workload::byName("KM", 0.05).params();
    params.footprintPages /= 32;
    params.hotPages = std::max<std::uint64_t>(params.hotPages / 32, 8);
    SimResults r = runOnce(Workload{params}, cfg);
    EXPECT_GT(r.execTicks, 0u);
    EXPECT_GT(r.accesses, 0u);
}

} // namespace
} // namespace idyll
