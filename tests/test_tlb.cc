/**
 * @file
 * Unit tests for the TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "tlb/tlb.hh"

namespace idyll
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.cusPerGpu = 4;
    return cfg;
}

TEST(Tlb, SingleLevelHitMissAndStats)
{
    Tlb tlb(TlbConfig{32, 32, 1});
    EXPECT_FALSE(tlb.probe(5).has_value());
    tlb.fill(5, TlbEntry{77, true});
    auto hit = tlb.probe(5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->pfn, 77u);
    EXPECT_EQ(tlb.hits().value(), 1u);
    EXPECT_EQ(tlb.misses().value(), 1u);
}

TEST(Tlb, ShootdownRemovesEntry)
{
    Tlb tlb(TlbConfig{32, 32, 1});
    tlb.fill(9, TlbEntry{1, true});
    EXPECT_TRUE(tlb.shootdown(9));
    EXPECT_FALSE(tlb.shootdown(9));
    EXPECT_FALSE(tlb.probe(9).has_value());
}

TEST(Tlb, LruEvictionAtCapacity)
{
    Tlb tlb(TlbConfig{4, 4, 1}); // fully associative, 4 entries
    for (Vpn v = 0; v < 4; ++v)
        tlb.fill(v, TlbEntry{v, true});
    tlb.probe(0); // refresh 0; 1 becomes LRU
    tlb.fill(100, TlbEntry{100, true});
    EXPECT_TRUE(tlb.probe(0).has_value());
    EXPECT_FALSE(tlb.probe(1).has_value());
}

TEST(TlbHierarchy, L1HitLatencyIsOneCycle)
{
    TlbHierarchy h(smallConfig());
    h.fill(0, 42, TlbEntry{7, true});
    auto r = h.probe(0, 42);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 1u);
}

TEST(TlbHierarchy, L2HitRefillsRequestingL1Only)
{
    TlbHierarchy h(smallConfig());
    h.l2().fill(42, TlbEntry{7, true});

    auto r = h.probe(1, 42); // L1 miss, L2 hit
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 1u + 10u);

    // CU 1's L1 now has it; CU 2's does not.
    EXPECT_TRUE(h.l1(1).probe(42).has_value());
    EXPECT_FALSE(h.l1(2).probe(42).has_value());
}

TEST(TlbHierarchy, FullMissLatencyIncludesBothLevels)
{
    TlbHierarchy h(smallConfig());
    auto r = h.probe(0, 999);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 11u);
}

TEST(TlbHierarchy, ShootdownSweepsEveryLevel)
{
    TlbHierarchy h(smallConfig());
    h.fill(0, 5, TlbEntry{1, true});
    h.fill(1, 5, TlbEntry{1, true});
    h.fill(2, 5, TlbEntry{1, true});
    // L2 + three L1 copies.
    EXPECT_EQ(h.shootdown(5), 4u);
    EXPECT_FALSE(h.probe(3, 5).hit);
    EXPECT_EQ(h.shootdown(5), 0u);
}

#if IDYLL_TRACE_ENABLED

TEST(TlbHierarchy, L2EvictionTraceIsCuAgnostic)
{
    // Regression: L2 victims used to be tagged with whichever CU's
    // fill triggered the eviction, misattributing shared-L2 activity
    // to one CU in Perfetto. L2 evictions must carry kNoCu; L1
    // evictions keep the owning CU.
    SystemConfig cfg = smallConfig();
    cfg.l2Tlb = TlbConfig{4, 4, 10};
    cfg.l1Tlb = TlbConfig{4, 4, 1};
    TlbHierarchy h(cfg);

    EventQueue eq;
    Tracer tracer(eq, kTraceAll);
    CollectTraceSink sink;
    tracer.addSink(&sink);
    h.setTracer(&tracer, 0);

    for (Vpn v = 0; v < 8; ++v)
        h.fill(2, v, TlbEntry{static_cast<Pfn>(v), true});

    bool saw_l2_evict = false;
    bool saw_l1_evict = false;
    for (const TraceEvent &e : sink.events()) {
        if (e.op != TraceOp::TlbEvict)
            continue;
        if (e.b == 2) {
            saw_l2_evict = true;
            EXPECT_EQ(e.a, kNoCu);
        } else {
            saw_l1_evict = true;
            EXPECT_EQ(e.b, 1u);
            EXPECT_EQ(e.a, 2u);
        }
    }
    EXPECT_TRUE(saw_l2_evict);
    EXPECT_TRUE(saw_l1_evict);
}

#endif // IDYLL_TRACE_ENABLED

TEST(TlbHierarchy, AggregateL1Stats)
{
    TlbHierarchy h(smallConfig());
    h.fill(0, 1, TlbEntry{1, true});
    h.probe(0, 1); // L1 hit
    h.probe(1, 2); // L1+L2 miss
    EXPECT_EQ(h.l1Hits(), 1u);
    EXPECT_EQ(h.l1Misses(), 1u);
}

TlbConfig
subEntryConfig()
{
    TlbConfig cfg{64, 4, 10};
    cfg.subEntries = 4;
    return cfg;
}

TEST(SubEntryTlb, ContiguousNeighborsShareOneTag)
{
    Tlb tlb(subEntryConfig());
    // One fill anchors the block; contiguous neighbors coalesce.
    tlb.fill(0x100, TlbEntry{0x500, true});
    tlb.fill(0x101, TlbEntry{0x501, false});
    auto a = tlb.probe(0x100);
    auto b = tlb.probe(0x101);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->pfn, 0x500u);
    EXPECT_TRUE(a->writable);
    EXPECT_EQ(b->pfn, 0x501u);
    EXPECT_FALSE(b->writable);
    // Slots that were never filled must not hit, even though their
    // block tag is resident.
    EXPECT_FALSE(tlb.probe(0x102).has_value());
    EXPECT_EQ(tlb.occupancy(), 2u);
}

TEST(SubEntryTlb, NonContiguousFillReanchorsTheBlock)
{
    Tlb tlb(subEntryConfig());
    tlb.fill(0x100, TlbEntry{0x500, true});
    tlb.fill(0x101, TlbEntry{0x501, true});
    // 0x102's PFN breaks contiguity (expected 0x502): the block
    // re-anchors and the shared translations are dropped.
    std::vector<Vpn> evicted;
    tlb.fill(0x102, TlbEntry{0x900, true}, evicted);
    EXPECT_EQ(evicted.size(), 2u);
    EXPECT_FALSE(tlb.probe(0x100).has_value());
    EXPECT_FALSE(tlb.probe(0x101).has_value());
    auto hit = tlb.probe(0x102);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->pfn, 0x900u);
    EXPECT_EQ(tlb.subConflicts(), 1u);
}

TEST(SubEntryTlb, ShootdownClearsOneSlotOnly)
{
    Tlb tlb(subEntryConfig());
    tlb.fill(0x200, TlbEntry{0x800, true});
    tlb.fill(0x201, TlbEntry{0x801, true});
    EXPECT_TRUE(tlb.shootdown(0x200));
    EXPECT_FALSE(tlb.shootdown(0x200));
    EXPECT_FALSE(tlb.probe(0x200).has_value());
    EXPECT_TRUE(tlb.probe(0x201).has_value());
}

TEST(SubEntryTlb, BlockEvictionReportsEveryVictim)
{
    // 1 block of 4 sub-entries: the second block's fill evicts the
    // first block wholesale.
    TlbConfig cfg{4, 1, 10};
    cfg.subEntries = 4;
    Tlb tlb(cfg);
    tlb.fill(0x100, TlbEntry{0x500, true});
    tlb.fill(0x101, TlbEntry{0x501, true});
    std::vector<Vpn> evicted;
    tlb.fill(0x200, TlbEntry{0x700, true}, evicted);
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[0], 0x100u);
    EXPECT_EQ(evicted[1], 0x101u);
    EXPECT_TRUE(tlb.probe(0x200).has_value());
}

TEST(SubEntryTlb, ForEachEnumeratesTranslations)
{
    Tlb tlb(subEntryConfig());
    tlb.fill(0x100, TlbEntry{0x500, true});
    tlb.fill(0x101, TlbEntry{0x501, false});
    std::vector<std::pair<Vpn, Pfn>> seen;
    tlb.forEachEntry([&](Vpn vpn, const TlbEntry &e) {
        seen.emplace_back(vpn, e.pfn);
    });
    ASSERT_EQ(seen.size(), 2u);
    // The unplug audit depends on exact (vpn, pfn) pairs.
    for (const auto &[vpn, pfn] : seen)
        EXPECT_EQ(pfn, 0x500u + (vpn - 0x100));
}

TEST(SubEntryTlb, HierarchyRefillKeepsLevelsCoherent)
{
    SystemConfig cfg = smallConfig();
    cfg.l2Tlb.subEntries = 4;
    TlbHierarchy h(cfg);
    h.fill(0, 0x300, TlbEntry{0x600, true});
    auto r = h.probe(1, 0x300); // L1 miss, sub-entry L2 hit
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.entry.pfn, 0x600u);
    EXPECT_TRUE(h.l1(1).probe(0x300).has_value());
    EXPECT_EQ(h.shootdown(0x300), 3u); // L2 + CU0's and CU1's L1
}

TEST(DeadEvictTlb, PredictorDemotesNeverReusedFills)
{
    TlbConfig cfg{8, 4, 10};
    cfg.deadEntryEviction = true;
    Tlb tlb(cfg);
    ASSERT_NE(tlb.predictor(), nullptr);
    // A scan: every fill is evicted without ever being re-probed.
    for (Vpn v = 0; v < 4096; ++v)
        tlb.fill(v, TlbEntry{static_cast<Pfn>(v), true});
    EXPECT_GT(tlb.deadEvictions(), 0u);
    EXPECT_GT(tlb.deadInsertions(), 0u);
}

TEST(DeadEvictTlb, DisabledByDefault)
{
    Tlb tlb(TlbConfig{8, 4, 10});
    EXPECT_EQ(tlb.predictor(), nullptr);
    for (Vpn v = 0; v < 64; ++v)
        tlb.fill(v, TlbEntry{static_cast<Pfn>(v), true});
    EXPECT_EQ(tlb.deadInsertions(), 0u);
}

} // namespace
} // namespace idyll
