/**
 * @file
 * Unit tests for the TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "tlb/tlb.hh"

namespace idyll
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.cusPerGpu = 4;
    return cfg;
}

TEST(Tlb, SingleLevelHitMissAndStats)
{
    Tlb tlb(TlbConfig{32, 32, 1});
    EXPECT_FALSE(tlb.probe(5).has_value());
    tlb.fill(5, TlbEntry{77, true});
    auto hit = tlb.probe(5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->pfn, 77u);
    EXPECT_EQ(tlb.hits().value(), 1u);
    EXPECT_EQ(tlb.misses().value(), 1u);
}

TEST(Tlb, ShootdownRemovesEntry)
{
    Tlb tlb(TlbConfig{32, 32, 1});
    tlb.fill(9, TlbEntry{1, true});
    EXPECT_TRUE(tlb.shootdown(9));
    EXPECT_FALSE(tlb.shootdown(9));
    EXPECT_FALSE(tlb.probe(9).has_value());
}

TEST(Tlb, LruEvictionAtCapacity)
{
    Tlb tlb(TlbConfig{4, 4, 1}); // fully associative, 4 entries
    for (Vpn v = 0; v < 4; ++v)
        tlb.fill(v, TlbEntry{v, true});
    tlb.probe(0); // refresh 0; 1 becomes LRU
    tlb.fill(100, TlbEntry{100, true});
    EXPECT_TRUE(tlb.probe(0).has_value());
    EXPECT_FALSE(tlb.probe(1).has_value());
}

TEST(TlbHierarchy, L1HitLatencyIsOneCycle)
{
    TlbHierarchy h(smallConfig());
    h.fill(0, 42, TlbEntry{7, true});
    auto r = h.probe(0, 42);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 1u);
}

TEST(TlbHierarchy, L2HitRefillsRequestingL1Only)
{
    TlbHierarchy h(smallConfig());
    h.l2().fill(42, TlbEntry{7, true});

    auto r = h.probe(1, 42); // L1 miss, L2 hit
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 1u + 10u);

    // CU 1's L1 now has it; CU 2's does not.
    EXPECT_TRUE(h.l1(1).probe(42).has_value());
    EXPECT_FALSE(h.l1(2).probe(42).has_value());
}

TEST(TlbHierarchy, FullMissLatencyIncludesBothLevels)
{
    TlbHierarchy h(smallConfig());
    auto r = h.probe(0, 999);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 11u);
}

TEST(TlbHierarchy, ShootdownSweepsEveryLevel)
{
    TlbHierarchy h(smallConfig());
    h.fill(0, 5, TlbEntry{1, true});
    h.fill(1, 5, TlbEntry{1, true});
    h.fill(2, 5, TlbEntry{1, true});
    // L2 + three L1 copies.
    EXPECT_EQ(h.shootdown(5), 4u);
    EXPECT_FALSE(h.probe(3, 5).hit);
    EXPECT_EQ(h.shootdown(5), 0u);
}

#if IDYLL_TRACE_ENABLED

TEST(TlbHierarchy, L2EvictionTraceIsCuAgnostic)
{
    // Regression: L2 victims used to be tagged with whichever CU's
    // fill triggered the eviction, misattributing shared-L2 activity
    // to one CU in Perfetto. L2 evictions must carry kNoCu; L1
    // evictions keep the owning CU.
    SystemConfig cfg = smallConfig();
    cfg.l2Tlb = TlbConfig{4, 4, 10};
    cfg.l1Tlb = TlbConfig{4, 4, 1};
    TlbHierarchy h(cfg);

    EventQueue eq;
    Tracer tracer(eq, kTraceAll);
    CollectTraceSink sink;
    tracer.addSink(&sink);
    h.setTracer(&tracer, 0);

    for (Vpn v = 0; v < 8; ++v)
        h.fill(2, v, TlbEntry{static_cast<Pfn>(v), true});

    bool saw_l2_evict = false;
    bool saw_l1_evict = false;
    for (const TraceEvent &e : sink.events()) {
        if (e.op != TraceOp::TlbEvict)
            continue;
        if (e.b == 2) {
            saw_l2_evict = true;
            EXPECT_EQ(e.a, kNoCu);
        } else {
            saw_l1_evict = true;
            EXPECT_EQ(e.b, 1u);
            EXPECT_EQ(e.a, 2u);
        }
    }
    EXPECT_TRUE(saw_l2_evict);
    EXPECT_TRUE(saw_l1_evict);
}

#endif // IDYLL_TRACE_ENABLED

TEST(TlbHierarchy, AggregateL1Stats)
{
    TlbHierarchy h(smallConfig());
    h.fill(0, 1, TlbEntry{1, true});
    h.probe(0, 1); // L1 hit
    h.probe(1, 2); // L1+L2 miss
    EXPECT_EQ(h.l1Hits(), 1u);
    EXPECT_EQ(h.l1Misses(), 1u);
}

} // namespace
} // namespace idyll
