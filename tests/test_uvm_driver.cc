/**
 * @file
 * Unit tests for the UVM driver, using mock GPUs so every message and
 * state transition is observable: fault resolution, remote mapping,
 * the full migration handshake, directory filtering, and necessity
 * accounting.
 */

#include <gtest/gtest.h>

#include <map>

#include "interconnect/network.hh"
#include "mem/addr.hh"
#include "sim/event_queue.hh"
#include "uvm/uvm_driver.hh"

namespace idyll
{
namespace
{

/** Records driver->GPU traffic; acks invalidations immediately. */
class MockGpu : public GpuItf
{
  public:
    MockGpu(GpuId id, Network &net, DriverItf *&driver)
        : _id(id), _net(net), _driver(driver)
    {
    }

    GpuId id() const override { return _id; }

    using GpuItf::receiveInvalidation;
    void
    receiveInvalidation(Vpn vpn, std::uint32_t round) override
    {
        invalidations.push_back(vpn);
        lastRound = round;
        // Like the real GPU: judge necessity at receipt, before the
        // mapping is torn down, and ride the verdict on the ack.
        const bool wasValid = valid.count(vpn) != 0;
        valid.erase(vpn);
        if (dropAcks > 0) {
            --dropAcks;
            return;
        }
        const unsigned copies = 1 + duplicateAcks;
        duplicateAcks = 0;
        for (unsigned c = 0; c < copies; ++c) {
            _net.send(_id, kHostId, 32, MsgClass::InvalAck,
                      [this, vpn, round, wasValid] {
                          _driver->onInvalAck(_id, vpn, round, wasValid);
                      });
        }
    }

    void
    receiveNewMapping(Vpn vpn, Pfn pfn, bool writable) override
    {
        mappings.emplace_back(vpn, pfn);
        valid[vpn] = pfn;
        lastWritable = writable;
    }

    void applyInstantInvalidation(Vpn vpn) override { valid.erase(vpn); }

    bool
    hasValidMapping(Vpn vpn) const override
    {
        return valid.count(vpn) != 0;
    }

    void serveTransFwProbe(Vpn, GpuId) override {}
    void receiveTransFwReply(Vpn,
                             std::optional<ForwardedMapping>) override
    {
    }

    GpuId _id;
    Network &_net;
    DriverItf *&_driver;
    std::vector<Vpn> invalidations;
    std::vector<std::pair<Vpn, Pfn>> mappings;
    std::map<Vpn, Pfn> valid;
    bool lastWritable = true;
    std::uint32_t lastRound = 0;
    unsigned dropAcks = 0;      ///< swallow the next N acks
    unsigned duplicateAcks = 0; ///< send N extra copies of the next ack
};

struct DriverFixture : ::testing::Test
{
    DriverFixture()
    {
        cfg.numGpus = 4;
        cfg.validate();
        net = std::make_unique<Network>(eq, cfg);
        driver = std::make_unique<UvmDriver>(eq, cfg, *net,
                                             AddrLayout{cfg.pageBits});
        driverPtr = driver.get();
        std::vector<GpuItf *> itfs;
        for (GpuId g = 0; g < cfg.numGpus; ++g) {
            gpus.push_back(
                std::make_unique<MockGpu>(g, *net, driverPtr));
            itfs.push_back(gpus.back().get());
        }
        driver->attachGpus(itfs);
    }

    void
    fault(GpuId gpu, Vpn vpn, bool write = false)
    {
        driver->onFarFault(FaultRecord{vpn, gpu, write, eq.now()});
    }

    SystemConfig cfg;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::unique_ptr<UvmDriver> driver;
    DriverItf *driverPtr = nullptr;
    std::vector<std::unique_ptr<MockGpu>> gpus;
};

TEST_F(DriverFixture, FirstTouchAllocatesOnFaultingGpu)
{
    fault(2, 100);
    eq.run();
    ASSERT_EQ(gpus[2]->mappings.size(), 1u);
    EXPECT_EQ(gpus[2]->mappings[0].first, 100u);
    EXPECT_EQ(ownerOf(gpus[2]->mappings[0].second), 2u);
    EXPECT_EQ(driver->stats().firstTouches.value(), 1u);
    EXPECT_EQ(driver->residentPages(2), 1u);
    // Host page table agrees.
    const Pte *hpte = driver->hostPageTable().findValid(100);
    ASSERT_NE(hpte, nullptr);
    EXPECT_EQ(ownerOf(hpte->pfn()), 2u);
}

TEST_F(DriverFixture, SecondGpuGetsRemoteMapping)
{
    fault(0, 50);
    eq.run();
    fault(1, 50);
    eq.run();
    ASSERT_EQ(gpus[1]->mappings.size(), 1u);
    // GPU 1's mapping points into GPU 0's memory.
    EXPECT_EQ(ownerOf(gpus[1]->mappings[0].second), 0u);
    EXPECT_EQ(driver->stats().remoteMappings.value(), 1u);
    EXPECT_EQ(driver->residentPages(1), 0u);
}

TEST_F(DriverFixture, BroadcastMigrationInvalidatesEveryGpu)
{
    fault(0, 7);
    eq.run();
    fault(1, 7);
    eq.run();
    driver->onMigrationRequest(1, 7);
    eq.run();

    // Broadcast: all four GPUs received an invalidation.
    for (GpuId g = 0; g < 4; ++g)
        EXPECT_EQ(gpus[g]->invalidations.size(), 1u) << "gpu " << g;
    EXPECT_EQ(driver->stats().invalSent.value(), 4u);
    // GPUs 0 and 1 held mappings: 2 necessary, 2 unnecessary.
    EXPECT_EQ(driver->stats().invalNecessary.value(), 2u);
    EXPECT_EQ(driver->stats().invalUnnecessary.value(), 2u);

    // The page now lives on GPU 1 and GPU 1 got the new mapping.
    const Pte *hpte = driver->hostPageTable().findValid(7);
    ASSERT_NE(hpte, nullptr);
    EXPECT_EQ(ownerOf(hpte->pfn()), 1u);
    EXPECT_TRUE(gpus[1]->hasValidMapping(7));
    EXPECT_EQ(driver->stats().migrations.value(), 1u);
    EXPECT_EQ(driver->residentPages(0), 0u);
    EXPECT_EQ(driver->residentPages(1), 1u);
    EXPECT_GT(driver->stats().migrationWait.mean(), 0.0);
    EXPECT_GT(driver->stats().migrationTotal.mean(),
              driver->stats().migrationWait.mean());
}

TEST_F(DriverFixture, DirectoryFiltersUntouchedGpus)
{
    cfg.invalFilter = InvalFilter::InPteDirectory;
    driver = std::make_unique<UvmDriver>(eq, cfg, *net,
                                         AddrLayout{cfg.pageBits});
    driverPtr = driver.get();
    std::vector<GpuItf *> itfs;
    for (auto &gpu : gpus)
        itfs.push_back(gpu.get());
    driver->attachGpus(itfs);

    fault(0, 9);
    eq.run();
    fault(3, 9);
    eq.run();
    driver->onMigrationRequest(3, 9);
    eq.run();

    // Only the two GPUs with access bits set were invalidated.
    EXPECT_EQ(gpus[0]->invalidations.size(), 1u);
    EXPECT_EQ(gpus[3]->invalidations.size(), 1u);
    EXPECT_TRUE(gpus[1]->invalidations.empty());
    EXPECT_TRUE(gpus[2]->invalidations.empty());
    EXPECT_EQ(driver->stats().invalSent.value(), 2u);
    EXPECT_EQ(driver->stats().invalUnnecessary.value(), 0u);
}

TEST_F(DriverFixture, FaultDuringMigrationBlocksUntilDone)
{
    fault(0, 5);
    eq.run();
    fault(1, 5);
    eq.run();
    driver->onMigrationRequest(1, 5);
    // While the migration is in flight, GPU 2 faults on the page.
    fault(2, 5);
    eq.run();

    EXPECT_EQ(driver->stats().blockedFaults.value(), 1u);
    // After the migration, GPU 2 got a remote mapping to GPU 1.
    ASSERT_FALSE(gpus[2]->mappings.empty());
    EXPECT_EQ(ownerOf(gpus[2]->mappings.back().second), 1u);
}

TEST_F(DriverFixture, DuplicateMigrationRequestsIgnored)
{
    fault(0, 3);
    eq.run();
    fault(1, 3);
    eq.run();
    driver->onMigrationRequest(1, 3);
    driver->onMigrationRequest(1, 3);
    eq.run();
    EXPECT_EQ(driver->stats().migrations.value(), 1u);
    EXPECT_EQ(driver->stats().duplicateMigrationRequests.value(), 1u);
}

TEST_F(DriverFixture, MigrationToCurrentOwnerRefused)
{
    fault(0, 11);
    eq.run();
    driver->onMigrationRequest(0, 11);
    eq.run();
    EXPECT_EQ(driver->stats().migrations.value(), 0u);
}

TEST_F(DriverFixture, PrepopulatePlacesPageWithoutFaults)
{
    const Pfn pfn = driver->prepopulatePage(200, 3);
    EXPECT_EQ(ownerOf(pfn), 3u);
    EXPECT_EQ(driver->residentPages(3), 1u);
    EXPECT_EQ(driver->stats().farFaults.value(), 0u);
    // A later fault from another GPU resolves to a remote mapping.
    fault(1, 200);
    eq.run();
    ASSERT_FALSE(gpus[1]->mappings.empty());
    EXPECT_EQ(ownerOf(gpus[1]->mappings[0].second), 3u);
}

TEST_F(DriverFixture, DuplicateAcksAreIdempotent)
{
    fault(0, 7);
    eq.run();
    fault(1, 7);
    eq.run();
    gpus[0]->duplicateAcks = 2; // triple-ack the next invalidation
    driver->onMigrationRequest(1, 7);
    eq.run();

    EXPECT_EQ(driver->stats().migrations.value(), 1u);
    EXPECT_EQ(driver->stats().duplicateAcks.value(), 2u);
    EXPECT_GE(gpus[0]->lastRound, 1u); // rounds are carried end to end
    const Pte *hpte = driver->hostPageTable().findValid(7);
    ASSERT_NE(hpte, nullptr);
    EXPECT_EQ(ownerOf(hpte->pfn()), 1u);
}

TEST_F(DriverFixture, DroppedAckRecoveredByRetry)
{
    cfg.integrity.invalRetryTimeout = 5000;
    driver = std::make_unique<UvmDriver>(eq, cfg, *net,
                                         AddrLayout{cfg.pageBits});
    driverPtr = driver.get();
    std::vector<GpuItf *> itfs;
    for (auto &gpu : gpus)
        itfs.push_back(gpu.get());
    driver->attachGpus(itfs);

    fault(0, 12);
    eq.run();
    fault(1, 12);
    eq.run();
    gpus[2]->dropAcks = 1; // lose GPU 2's ack in flight
    driver->onMigrationRequest(1, 12);
    eq.run();

    // The retry timer fired, re-sent only the unacked target, and the
    // migration still completed.
    EXPECT_GE(driver->stats().invalRetryTimeouts.value(), 1u);
    EXPECT_GE(driver->stats().invalRetries.value(), 1u);
    EXPECT_EQ(gpus[2]->invalidations.size(), 2u);
    EXPECT_EQ(gpus[3]->invalidations.size(), 1u);
    EXPECT_EQ(driver->stats().migrations.value(), 1u);
    const Pte *hpte = driver->hostPageTable().findValid(12);
    ASSERT_NE(hpte, nullptr);
    EXPECT_EQ(ownerOf(hpte->pfn()), 1u);
    EXPECT_TRUE(gpus[1]->hasValidMapping(12));
}

TEST_F(DriverFixture, SharingDegreeTracksAccesses)
{
    driver->recordAccess(0, 42);
    driver->recordAccess(0, 42);
    driver->recordAccess(1, 42);
    driver->recordAccess(2, 99);
    auto buckets = driver->accessesBySharingDegree();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 1u); // one access to the 1-GPU page (99)
    EXPECT_EQ(buckets[1], 3u); // three accesses to the 2-GPU page (42)
}

} // namespace
} // namespace idyll
