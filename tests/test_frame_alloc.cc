/**
 * @file
 * Unit tests for the per-device frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/frame_alloc.hh"

namespace idyll
{
namespace
{

TEST(FrameAlloc, AllocatesDeviceQualifiedUniqueFrames)
{
    FrameAllocator alloc(2, 100);
    std::set<Pfn> seen;
    for (int i = 0; i < 100; ++i) {
        auto pfn = alloc.allocate();
        ASSERT_TRUE(pfn.has_value());
        EXPECT_EQ(ownerOf(*pfn), 2u);
        EXPECT_TRUE(seen.insert(*pfn).second);
    }
    EXPECT_EQ(alloc.used(), 100u);
    EXPECT_EQ(alloc.freeFrames(), 0u);
}

TEST(FrameAlloc, ExhaustionReturnsNullopt)
{
    FrameAllocator alloc(0, 2);
    EXPECT_TRUE(alloc.allocate().has_value());
    EXPECT_TRUE(alloc.allocate().has_value());
    EXPECT_FALSE(alloc.allocate().has_value());
}

TEST(FrameAlloc, ReleaseRecyclesFrames)
{
    FrameAllocator alloc(1, 2);
    const Pfn a = *alloc.allocate();
    const Pfn b = *alloc.allocate();
    EXPECT_FALSE(alloc.allocate().has_value());
    alloc.release(a);
    EXPECT_EQ(alloc.freeFrames(), 1u);
    const Pfn c = *alloc.allocate();
    EXPECT_EQ(c, a); // recycled
    (void)b;
}

TEST(FrameAllocDeath, WrongDeviceRelease)
{
    FrameAllocator alloc(1, 4);
    FrameAllocator other(2, 4);
    const Pfn foreign = *other.allocate();
    EXPECT_DEATH(alloc.release(foreign), "wrong");
}

TEST(FrameAllocDeath, ReleasingNeverAllocatedFrame)
{
    FrameAllocator alloc(0, 4);
    EXPECT_DEATH(alloc.release(makeDevicePfn(0, 3)), "never");
}

} // namespace
} // namespace idyll
