/**
 * @file
 * Unit tests for the address layout and the PTE format, including the
 * in-PTE directory bits of Figure 8.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"
#include "mem/pte.hh"

namespace idyll
{
namespace
{

TEST(AddrLayout, FourKbGeometry)
{
    EXPECT_EQ(kLayout4K.pageBits, 12u);
    EXPECT_EQ(kLayout4K.vpnBits, 45u);
    EXPECT_EQ(kLayout4K.numLevels, 5u);
    EXPECT_EQ(kLayout4K.pageSize(), 4096u);
}

TEST(AddrLayout, TwoMbGeometry)
{
    EXPECT_EQ(kLayout2M.pageBits, 21u);
    EXPECT_EQ(kLayout2M.vpnBits, 36u);
    EXPECT_EQ(kLayout2M.numLevels, 4u);
}

TEST(AddrLayout, VpnAndOffsetRoundTrip)
{
    const VAddr va = 0x1234567ABCDull;
    EXPECT_EQ(kLayout4K.vpnOf(va), va >> 12);
    EXPECT_EQ(kLayout4K.pageOffset(va), va & 0xFFFu);
    EXPECT_EQ(kLayout4K.pageBase(va) + kLayout4K.pageOffset(va), va);
}

TEST(AddrLayout, LevelIndicesDecomposeVpn)
{
    const Vpn vpn = (3ull << 36) | (7ull << 27) | (11ull << 18) |
                    (13ull << 9) | 17ull;
    EXPECT_EQ(kLayout4K.levelIndex(vpn, 5), 3u);
    EXPECT_EQ(kLayout4K.levelIndex(vpn, 4), 7u);
    EXPECT_EQ(kLayout4K.levelIndex(vpn, 3), 11u);
    EXPECT_EQ(kLayout4K.levelIndex(vpn, 2), 13u);
    EXPECT_EQ(kLayout4K.levelIndex(vpn, 1), 17u);
}

TEST(AddrLayout, IrmbBaseOffsetRoundTrip)
{
    const Vpn vpn = 0x123456789ull;
    const auto base = kLayout4K.irmbBase(vpn);
    const auto offset = kLayout4K.irmbOffset(vpn);
    EXPECT_EQ(base, vpn >> 9);
    EXPECT_EQ(offset, vpn & 0x1FFu);
    EXPECT_EQ(kLayout4K.irmbVpn(base, offset), vpn);
}

TEST(Pte, FlagBitsIndependent)
{
    Pte pte;
    EXPECT_FALSE(pte.valid());
    pte.setValid(true);
    pte.setWritable(true);
    pte.setDirty(true);
    EXPECT_TRUE(pte.valid());
    EXPECT_TRUE(pte.writable());
    EXPECT_TRUE(pte.dirty());
    pte.setWritable(false);
    EXPECT_TRUE(pte.valid());
    EXPECT_FALSE(pte.writable());
}

TEST(Pte, PfnFieldIsolatedFromFlags)
{
    Pte pte;
    pte.setValid(true);
    pte.setPfn(0xABCDE12345ull >> 4); // 36-bit pfn
    EXPECT_TRUE(pte.valid());
    EXPECT_EQ(pte.pfn(), 0xABCDE12345ull >> 4);
    pte.setPfn(1);
    EXPECT_EQ(pte.pfn(), 1u);
    EXPECT_TRUE(pte.valid());
}

TEST(Pte, AccessBitsLiveInBits62To52)
{
    Pte pte;
    pte.setAccessBit(0, true);
    pte.setAccessBit(10, true);
    EXPECT_EQ(pte.raw() & (1ull << 52), 1ull << 52);
    EXPECT_EQ(pte.raw() & (1ull << 62), 1ull << 62);
    EXPECT_EQ(pte.accessBits(), (1u << 0) | (1u << 10));
    pte.clearAccessBits();
    EXPECT_EQ(pte.accessBits(), 0u);
}

TEST(Pte, AccessBitsDoNotDisturbPfn)
{
    Pte pte;
    pte.setPfn((1ull << 40) - 1);
    pte.setAccessBit(5, true);
    EXPECT_EQ(pte.pfn(), (1ull << 40) - 1);
    pte.clearAccessBits();
    EXPECT_EQ(pte.pfn(), (1ull << 40) - 1);
}

TEST(Pte, DirectorySlotHashMatchesPaper)
{
    // h(gpu) = gpu % m; with m = 11 GPUs 0..10 map one-to-one and
    // GPU 11 aliases onto slot 0 (Section 6.2).
    EXPECT_EQ(Pte::directorySlot(0, 11), 0u);
    EXPECT_EQ(Pte::directorySlot(3, 11), 3u);
    EXPECT_EQ(Pte::directorySlot(10, 11), 10u);
    EXPECT_EQ(Pte::directorySlot(11, 11), 0u);
    EXPECT_EQ(Pte::directorySlot(13, 4), 1u);
}

TEST(DevicePfn, EncodesOwnerAndFrame)
{
    const Pfn pfn = makeDevicePfn(3, 12345);
    EXPECT_EQ(ownerOf(pfn), 3u);
    EXPECT_EQ(deviceFrame(pfn), 12345u);
}

} // namespace
} // namespace idyll
