/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/metrics.hh"

namespace idyll
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AvgStat, TracksSumCountMeanMinMax)
{
    AvgStat a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
}

TEST(AvgStat, ResetClearsEverything)
{
    AvgStat a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsSamples)
{
    Distribution d(10.0, 4);
    d.sample(5.0);   // bucket 0
    d.sample(15.0);  // bucket 1
    d.sample(35.0);  // bucket 3
    d.sample(999.0); // clamped to last bucket
    d.sample(-3.0);  // clamped to first bucket
    const auto &b = d.buckets();
    EXPECT_EQ(b[0], 2u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 0u);
    EXPECT_EQ(b[3], 2u);
    EXPECT_EQ(d.summary().count(), 5u);
}

TEST(MetricsGroup, DumpsRegisteredStats)
{
    MetricsGroup group("gpu0");
    Counter c;
    c.inc(7);
    AvgStat a;
    a.sample(4.0);
    group.registerCounter("faults", &c);
    group.registerAvg("latency", &a);

    std::ostringstream os;
    group.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("gpu0.faults 7"), std::string::npos);
    EXPECT_NE(out.find("gpu0.latency.mean 4"), std::string::npos);
}

TEST(MetricsGroup, FindByDottedPathThroughChildren)
{
    MetricsGroup root("system");
    MetricsGroup &child = root.child("tlb");
    Counter hits;
    hits.inc(3);
    child.registerCounter("hits", &hits);

    const Counter *found = root.findCounter("tlb.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->value(), 3u);
    EXPECT_EQ(root.findCounter("tlb.misses"), nullptr);
    EXPECT_EQ(root.findCounter("nope.hits"), nullptr);
}

TEST(MetricsGroup, ChildDedupesByNameAndKeepsInsertionOrder)
{
    MetricsGroup root("sys");
    MetricsGroup &a = root.child("a");
    MetricsGroup &b = root.child("b");
    EXPECT_EQ(&root.child("a"), &a);
    EXPECT_EQ(&root.child("b"), &b);
    EXPECT_NE(&a, &b);

    Counter ca, cb;
    ca.inc(1);
    cb.inc(2);
    a.registerCounter("x", &ca);
    b.registerCounter("x", &cb);

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    const auto posA = out.find("sys.a.x 1");
    const auto posB = out.find("sys.b.x 2");
    ASSERT_NE(posA, std::string::npos);
    ASSERT_NE(posB, std::string::npos);
    EXPECT_LT(posA, posB);
}

TEST(MetricsGroup, FindsDottedRegisteredNames)
{
    // Components register pre-dotted names like "gmmu.demandWalks" in
    // a flat group; lookup must try the full path before recursing.
    MetricsGroup group("gpu0");
    Counter walks;
    walks.inc(9);
    group.registerCounter("gmmu.demandWalks", &walks);

    const Counter *found = group.findCounter("gmmu.demandWalks");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->value(), 9u);
}

TEST(MetricsGroup, ToJsonEmitsLabelsCountersAndChildren)
{
    MetricsGroup root("system");
    MetricsGroup &gpu = root.child("gpu0");
    gpu.setLabel("gpu", "0");
    Counter c;
    c.inc(5);
    gpu.registerCounter("faults", &c);
    AvgStat a;
    a.sample(2.0);
    a.sample(4.0);
    gpu.registerAvg("latency", &a);

    const std::string json = root.toJson();
    EXPECT_NE(json.find("\"children\""), std::string::npos);
    EXPECT_NE(json.find("\"gpu0\""), std::string::npos);
    EXPECT_NE(json.find("\"labels\": {\"gpu\": \"0\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"faults\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

} // namespace
} // namespace idyll
