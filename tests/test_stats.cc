/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace idyll
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AvgStat, TracksSumCountMeanMinMax)
{
    AvgStat a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
}

TEST(AvgStat, ResetClearsEverything)
{
    AvgStat a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsSamples)
{
    Distribution d(10.0, 4);
    d.sample(5.0);   // bucket 0
    d.sample(15.0);  // bucket 1
    d.sample(35.0);  // bucket 3
    d.sample(999.0); // clamped to last bucket
    d.sample(-3.0);  // clamped to first bucket
    const auto &b = d.buckets();
    EXPECT_EQ(b[0], 2u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 0u);
    EXPECT_EQ(b[3], 2u);
    EXPECT_EQ(d.summary().count(), 5u);
}

TEST(StatGroup, DumpsRegisteredStats)
{
    StatGroup group("gpu0");
    Counter c;
    c.inc(7);
    AvgStat a;
    a.sample(4.0);
    group.registerCounter("faults", &c);
    group.registerAvg("latency", &a);

    std::ostringstream os;
    group.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("gpu0.faults 7"), std::string::npos);
    EXPECT_NE(out.find("gpu0.latency.mean 4"), std::string::npos);
}

TEST(StatGroup, FindByDottedPathThroughChildren)
{
    StatGroup root("system");
    StatGroup child("tlb");
    Counter hits;
    hits.inc(3);
    child.registerCounter("hits", &hits);
    root.addChild(&child);

    const Counter *found = root.findCounter("tlb.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->value(), 3u);
    EXPECT_EQ(root.findCounter("tlb.misses"), nullptr);
    EXPECT_EQ(root.findCounter("nope.hits"), nullptr);
}

} // namespace
} // namespace idyll
