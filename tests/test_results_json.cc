/**
 * @file
 * Tests for the JSON results emitter: escaping, per-run toJson(), the
 * suite-level writer, and the sweep registry behind idyll_sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/cli.hh"
#include "harness/sweeps.hh"
#include "harness/tables.hh"

namespace idyll
{
namespace
{

TEST(Json, EscapeHandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ToJsonEmitsEveryHeadlineField)
{
    SimResults r;
    r.app = "PR";
    r.scheme = "idyll";
    r.execTicks = 12345;
    r.instructions = 678;
    r.mpki = 1.25;
    r.sharingBuckets = {10, 20, 30};
    const std::string json = r.toJson();

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"app\": \"PR\""), std::string::npos);
    EXPECT_NE(json.find("\"scheme\": \"idyll\""), std::string::npos);
    EXPECT_NE(json.find("\"execTicks\": 12345"), std::string::npos);
    EXPECT_NE(json.find("\"instructions\": 678"), std::string::npos);
    EXPECT_NE(json.find("\"mpki\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"sharingBuckets\": [10, 20, 30]"),
              std::string::npos);
    EXPECT_NE(json.find("\"networkBytes\": 0"), std::string::npos);
}

TEST(Json, DoublesRoundTripExactly)
{
    SimResults r;
    r.mpki = 0.1 + 0.2; // not representable; needs max_digits10
    const std::string json = r.toJson();
    const auto pos = json.find("\"mpki\": ");
    ASSERT_NE(pos, std::string::npos);
    const double parsed = std::stod(json.substr(pos + 8));
    EXPECT_EQ(parsed, r.mpki);
}

TEST(Json, SuiteWriterShapesDocument)
{
    SimResults a, b;
    a.app = "BS";
    a.scheme = "baseline";
    b.app = "SC";
    b.scheme = "baseline";
    const std::vector<std::vector<SimResults>> grid = {{a, b}};

    std::ostringstream os;
    writeSuiteJson(os, "smoke", 0.05, {"BS", "SC"}, {"baseline"},
                   grid);
    const std::string doc = os.str();

    EXPECT_NE(doc.find("\"suite\": \"smoke\""), std::string::npos);
    EXPECT_NE(doc.find("\"scale\": 0.05"), std::string::npos);
    EXPECT_NE(doc.find("\"apps\": [\"BS\", \"SC\"]"),
              std::string::npos);
    EXPECT_NE(doc.find("\"schemes\": [\"baseline\"]"),
              std::string::npos);
    // One result object per grid cell, scheme-major.
    EXPECT_LT(doc.find("\"app\": \"BS\""), doc.find("\"app\": \"SC\""));
    // Balanced braces => structurally sound JSON.
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
}

TEST(JsonDeath, SuiteWriterRejectsRaggedGrids)
{
    std::ostringstream os;
    const std::vector<std::vector<SimResults>> ragged = {{}};
    EXPECT_DEATH(
        writeSuiteJson(os, "bad", 1.0, {"BS"}, {"x", "y"}, ragged),
        "schemes");
}

TEST(Sweeps, RegistryNamesResolve)
{
    const auto names = sweepNames();
    ASSERT_FALSE(names.empty());
    for (const std::string &name : names) {
        const auto spec = sweepByName(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_EQ(spec->name, name);
        EXPECT_FALSE(spec->apps.empty()) << name;
        EXPECT_FALSE(spec->schemes.empty()) << name;
        // Every scheme name must resolve to a preset.
        for (const std::string &scheme : spec->schemes)
            EXPECT_TRUE(schemeByName(scheme).has_value())
                << name << " -> " << scheme;
    }
    EXPECT_FALSE(sweepByName("no-such-figure").has_value());
}

TEST(Sweeps, SmokeSweepIsCiSized)
{
    const auto spec = sweepByName("smoke");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->apps.size(), 2u);
    EXPECT_EQ(spec->schemes.size(), 3u);
    const auto points = sweepSchemes(*spec);
    ASSERT_EQ(points.size(), 3u);
    // Schemes come back simulation-scaled.
    EXPECT_EQ(points[0].cfg.accessCounterThreshold,
              kScaledThreshold256);
}

TEST(Sweeps, Fig11MatchesThePapersGrid)
{
    const auto spec = sweepByName("fig11");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->apps.size(), 9u); // the Table 3 applications
    // The paper's six schemes plus the two L2-policy ablations
    // (dead-entry eviction, sub-entry sharing) on top of IDYLL.
    EXPECT_EQ(spec->schemes.size(), 8u);
    EXPECT_EQ(spec->schemes.front(), "baseline");
}

TEST(Sweeps, Fig17ComparesL2TlbPolicies)
{
    const auto spec = sweepByName("fig17");
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->schemes.size(), 3u);
    EXPECT_EQ(spec->schemes[0], "idyll");
    EXPECT_EQ(spec->schemes[1], "idyll+dead");
    EXPECT_EQ(spec->schemes[2], "idyll+sub");
}

} // namespace
} // namespace idyll
